"""Unit tests for the mixed-clock FIFO, synchronizers and pausible clocks (§3.2)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.async_comm.fifo import MixedClockFifo
from repro.async_comm.pausible import PausibleClockModel
from repro.async_comm.synchronizer import (Synchronizer,
                                           synchronization_failure_probability)
from repro.sim.clock import Clock


def make_fifo(capacity=4, producer_period=1.0, consumer_period=1.0,
              consumer_phase=0.0, consumer_sync=1, producer_sync=1):
    return MixedClockFifo(
        "test", capacity,
        producer_clock=Clock("prod", producer_period),
        consumer_clock=Clock("cons", consumer_period, phase=consumer_phase),
        consumer_sync=consumer_sync, producer_sync=producer_sync,
    )


# ----------------------------------------------------------------- synchronizer
def test_synchronizer_latency_and_observation_time():
    sync = Synchronizer(Clock("rx", period=2.0, phase=0.0), depth=2)
    assert sync.latency() == pytest.approx(4.0)
    # produced at t=0.5 -> captured at the next edge (t=2.0) -> +2 cycles
    assert sync.observable_at(0.5) == pytest.approx(6.0)
    # produced exactly on an edge misses it (setup time)
    assert sync.observable_at(2.0) == pytest.approx(8.0)


def test_synchronizer_depth_zero_is_next_edge():
    sync = Synchronizer(Clock("rx", period=1.0), depth=0)
    assert sync.observable_at(0.3) == pytest.approx(1.0)


def test_synchronizer_rejects_negative_depth():
    with pytest.raises(ValueError):
        Synchronizer(Clock("rx", period=1.0), depth=-1)


def test_failure_probability_is_tiny_but_nonzero():
    probability = synchronization_failure_probability(
        clock_frequency_ghz=1.0, data_rate_ghz=1.0, resolution_time_ns=0.5)
    assert 0.0 <= probability < 1e-9


# ------------------------------------------------------------------------ FIFO
def test_data_not_visible_until_synchronized():
    fifo = make_fifo(consumer_sync=1)
    fifo.push("x", 0.25)
    # next consumer edge after 0.25 is t=1.0; +1 sync cycle -> visible at 2.0
    assert not fifo.can_pop(1.0)
    assert not fifo.can_pop(1.9)
    assert fifo.can_pop(2.0)
    assert fifo.pop(2.0) == "x"
    assert fifo.last_pop_wait == pytest.approx(1.75)


def test_fifo_preserves_order():
    fifo = make_fifo(capacity=8)
    for index in range(5):
        fifo.push(index, float(index))
    values = []
    time = 10.0
    while fifo.can_pop(time):
        values.append(fifo.pop(time))
    assert values == [0, 1, 2, 3, 4]


def test_freed_space_reaches_producer_late():
    fifo = make_fifo(capacity=2, producer_sync=1)
    fifo.push("a", 0.0)
    fifo.push("b", 0.0)
    assert not fifo.can_push(0.5)
    fifo.pop(5.0)
    # the freed slot is synchronized back into the producer clock: the next
    # producer edge after t=5 is 6.0, plus one producer cycle -> 7.0
    assert fifo.apparent_occupancy(5.1) == 2
    assert not fifo.can_push(6.9)
    assert fifo.can_push(7.0)


def test_push_into_apparently_full_fifo_raises():
    fifo = make_fifo(capacity=1)
    fifo.push(1, 0.0)
    with pytest.raises(OverflowError):
        fifo.push(2, 0.0)


def test_pop_before_visibility_raises():
    fifo = make_fifo()
    fifo.push(1, 0.0)
    with pytest.raises(LookupError):
        fifo.pop(0.5)


def test_flush_returns_slots_and_counts():
    fifo = make_fifo(capacity=8)
    for index in range(4):
        fifo.push(index, 0.0)
    assert fifo.flush(lambda v: v >= 2) == 2
    assert fifo.items() == [0, 1]
    assert fifo.flush() == 2
    assert fifo.occupancy == 0


def test_steady_state_latency_reflects_consumer_clock():
    fast_consumer = make_fifo(consumer_period=0.5)
    slow_consumer = make_fifo(consumer_period=2.0)
    assert fast_consumer.steady_state_latency < slow_consumer.steady_state_latency


def test_mismatched_clock_periods():
    """Producer at 1 ns, consumer at 3 ns: items become visible on consumer edges."""
    fifo = make_fifo(capacity=16, producer_period=1.0, consumer_period=3.0,
                     consumer_sync=0)
    for index in range(6):
        fifo.push(index, float(index))
    # at t=3 the consumer's first edge after pushes at t=0,1,2 has passed
    visible = 0
    while fifo.can_pop(3.0):
        fifo.pop(3.0)
        visible += 1
    assert visible == 3


@settings(max_examples=40, deadline=None)
@given(st.lists(st.integers(min_value=0, max_value=1000), min_size=1, max_size=20),
       st.floats(min_value=0.3, max_value=3.0, allow_nan=False),
       st.floats(min_value=0.3, max_value=3.0, allow_nan=False))
def test_property_fifo_never_loses_or_reorders(values, producer_period, consumer_period):
    fifo = make_fifo(capacity=len(values), producer_period=producer_period,
                     consumer_period=consumer_period)
    for index, value in enumerate(values):
        fifo.push(value, index * producer_period)
    deadline = (len(values) + 10) * (producer_period + consumer_period)
    out = []
    while fifo.can_pop(deadline):
        out.append(fifo.pop(deadline))
    assert out == values


# ------------------------------------------------------------------- pop_bulk
def test_fifo_pop_bulk_respects_visibility():
    fifo = make_fifo(capacity=8)
    for i in range(4):
        fifo.push(i, float(i))          # pushed at t=0..3
    # nothing is visible before the first synchronized consumer edge
    assert fifo.pop_bulk(0.5, 4) == []
    # at t=10 everything is visible; drain in two bounded batches
    first = fifo.pop_bulk(10.0, 2)
    assert [item for item, _ in first] == [0, 1]
    second = fifo.pop_bulk(10.0, 10)
    assert [item for item, _ in second] == [2, 3]
    assert fifo.pop_count == 4
    assert fifo.occupancy == 0


@settings(max_examples=40, deadline=None)
@given(st.lists(st.integers(min_value=0, max_value=1000), min_size=1, max_size=20),
       st.floats(min_value=0.3, max_value=3.0, allow_nan=False),
       st.floats(min_value=0.3, max_value=3.0, allow_nan=False),
       st.integers(min_value=1, max_value=6),
       st.floats(min_value=0.0, max_value=40.0, allow_nan=False))
def test_property_fifo_pop_bulk_equals_repeated_pop_ready(
        values, producer_period, consumer_period, limit, drain_time):
    """Bulk drain must match a pop_ready loop: items, waits and stats."""
    bulk = make_fifo(capacity=len(values), producer_period=producer_period,
                     consumer_period=consumer_period)
    loop = make_fifo(capacity=len(values), producer_period=producer_period,
                     consumer_period=consumer_period)
    for index, value in enumerate(values):
        bulk.push(value, index * producer_period)
        loop.push(value, index * producer_period)
    batch = bulk.pop_bulk(drain_time, limit)
    expected = []
    for _ in range(limit):
        item = loop.pop_ready(drain_time)
        if item is None:
            break
        expected.append((item, loop.last_pop_wait))
    assert batch == expected
    assert bulk.pop_count == loop.pop_count
    assert bulk.total_wait == loop.total_wait
    assert bulk.occupancy == loop.occupancy
    # the producer-side view (synchronized freed space) must agree too
    probe = drain_time + 10.0 * producer_period
    assert bulk.apparent_occupancy(probe) == loop.apparent_occupancy(probe)
    assert bulk.can_push(drain_time) == loop.can_push(drain_time)


# -------------------------------------------------------------- pausible clocks
def test_pausible_clock_stretches_with_communication_rate():
    model = PausibleClockModel(nominal_period=1.0, stretch_per_transaction=0.6)
    assert model.effective_period(0.0) == pytest.approx(1.0)
    assert model.effective_period(1.0) == pytest.approx(1.6)
    assert model.slowdown(1.0) == pytest.approx(1.6)
    assert model.effective_frequency(1.0) == pytest.approx(1.0 / 1.6)


def test_pausible_clock_validation():
    with pytest.raises(ValueError):
        PausibleClockModel(nominal_period=0.0, stretch_per_transaction=0.1)
    with pytest.raises(ValueError):
        PausibleClockModel(nominal_period=1.0, stretch_per_transaction=-1.0)
    model = PausibleClockModel(nominal_period=1.0, stretch_per_transaction=0.5)
    with pytest.raises(ValueError):
        model.effective_period(-0.1)
