"""Pausible / stretchable clocking model.

The paper (Section 3.2) discusses stretchable clocks -- the alternative to
FIFO-based communication in which an arbiter inside the ring-oscillator loop
stretches one clock phase while a handshake completes -- and argues that in a
processor pipeline, where transactions occur practically every cycle, the
effective clock frequency would end up set by the communication rate rather
than by the clock generator.

This module provides a small analytical model of that effect so the argument
can be reproduced quantitatively (see ``benchmarks/bench_ablation_pausible.py``
and ``examples/async_mechanisms.py``).  It is not used inside the processor
timing model (the paper's processor uses FIFOs), but it is part of the design
space the paper surveys.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass
class PausibleClockModel:
    """Analytical model of a pausible (stretchable) clock.

    Parameters
    ----------
    nominal_period:
        Free-running period of the local ring oscillator, in ns.
    stretch_per_transaction:
        How long one phase is stretched while a handshake completes, in ns.
        Typically on the order of the partner domain's period when the
        partner is slower, or the arbitration delay when it is not.
    """

    nominal_period: float
    stretch_per_transaction: float

    def __post_init__(self) -> None:
        if self.nominal_period <= 0:
            raise ValueError("nominal_period must be positive")
        if self.stretch_per_transaction < 0:
            raise ValueError("stretch_per_transaction must be non-negative")

    def effective_period(self, transactions_per_cycle: float) -> float:
        """Average clock period once stretching is accounted for.

        ``transactions_per_cycle`` is the average number of inter-domain
        transactions initiated per local clock cycle (0 = never communicates,
        1 = communicates every cycle, as in a processor pipeline).
        """
        if transactions_per_cycle < 0:
            raise ValueError("transactions_per_cycle must be non-negative")
        return self.nominal_period + transactions_per_cycle * self.stretch_per_transaction

    def effective_frequency(self, transactions_per_cycle: float) -> float:
        """Average frequency in GHz under the given communication rate."""
        return 1.0 / self.effective_period(transactions_per_cycle)

    def slowdown(self, transactions_per_cycle: float) -> float:
        """Effective period divided by nominal period (>= 1)."""
        return self.effective_period(transactions_per_cycle) / self.nominal_period
