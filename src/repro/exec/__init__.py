"""Pluggable sweep execution: job backends behind one unified API.

This package decouples *what* a sweep runs (scenarios) from *how* it runs
them.  :class:`~repro.exec.config.ExecutionConfig` is the single spelling of
the execution knobs (backend, jobs, store, warm-start, retry policy)
threaded through every sweep entry point;
:class:`~repro.exec.backends.JobBackend` is the fabric protocol with three
implementations -- ``serial`` (in-process), ``local`` (the warm-started
process pool, the default) and ``subprocess`` (worker processes
coordinating through queue + *leased* claim files in a shared results
store, the multi-host shape; see :mod:`repro.exec.worker`).  The ``repro
serve`` results service (:mod:`repro.serve`) drains its miss queue through
the same protocol.  :mod:`repro.exec.faults` provides the deterministic
fault-injection harness (seeded :class:`~repro.exec.faults.FaultPlan`
activated via ``REPRO_FAULT_PLAN``) that proves the fabric survives worker
kills, torn writes and slow filesystems with bit-identical results.
"""

from .backends import (INFRASTRUCTURE_ERRORS, JOB_BACKENDS, JobBackend,
                       JobBackendInfo, JobHandle, LocalPoolBackend,
                       SerialBackend, SubprocessBackend,
                       available_job_backends, is_infrastructure_error,
                       make_job_backend, register_job_backend, retry_delay,
                       timed_run_scenario)
from .config import UNSET, ExecutionConfig, resolve_execution
from .faults import (FAULT_LOG_ENV_VAR, FAULT_PLAN_ENV_VAR,
                     FAULT_ROLE_ENV_VAR, FaultPlan, FaultRule, inject)

__all__ = [
    "ExecutionConfig",
    "FAULT_LOG_ENV_VAR",
    "FAULT_PLAN_ENV_VAR",
    "FAULT_ROLE_ENV_VAR",
    "FaultPlan",
    "FaultRule",
    "INFRASTRUCTURE_ERRORS",
    "JOB_BACKENDS",
    "JobBackend",
    "JobBackendInfo",
    "JobHandle",
    "LocalPoolBackend",
    "SerialBackend",
    "SubprocessBackend",
    "UNSET",
    "available_job_backends",
    "inject",
    "is_infrastructure_error",
    "make_job_backend",
    "register_job_backend",
    "resolve_execution",
    "retry_delay",
    "timed_run_scenario",
]
