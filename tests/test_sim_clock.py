"""Unit tests for clocks and clock domains."""

import pytest

from repro.sim.clock import Clock, ClockDomain
from repro.sim.engine import SimulationEngine
from repro.sim.event import SimulationError


class TickCounter:
    def __init__(self):
        self.edges = []

    def clock_edge(self, cycle, time):
        self.edges.append((cycle, time))


def test_clock_edge_times_and_cycle_count():
    clock = Clock("test", period=2.0, phase=0.5)
    assert clock.edge_time(0) == 0.5
    assert clock.edge_time(3) == 6.5
    assert clock.frequency == 0.5
    assert clock.cycles_elapsed(0.4) == 0
    assert clock.cycles_elapsed(0.5) == 1
    assert clock.cycles_elapsed(6.6) == 4


def test_clock_phase_wraps_into_period():
    clock = Clock("test", period=2.0, phase=5.0)
    assert clock.phase == pytest.approx(1.0)


def test_clock_validation():
    with pytest.raises(SimulationError):
        Clock("bad", period=0.0)
    with pytest.raises(SimulationError):
        Clock("bad", period=1.0, phase=-0.1)


def test_clock_scaled_slows_period():
    clock = Clock("x", period=1.0)
    slower = clock.scaled(1.5)
    assert slower.period == pytest.approx(1.5)
    with pytest.raises(SimulationError):
        clock.scaled(0.0)


def test_domain_ticks_components_every_edge():
    engine = SimulationEngine()
    domain = ClockDomain(Clock("core", period=1.0))
    counter = TickCounter()
    domain.add_component(counter)
    domain.bind(engine)
    engine.run(until=4.5)
    assert [cycle for cycle, _ in counter.edges] == [0, 1, 2, 3, 4]
    assert domain.cycle == 5


def test_domain_components_tick_in_registration_order():
    engine = SimulationEngine()
    domain = ClockDomain(Clock("core", period=1.0))
    order = []

    class Stage:
        def __init__(self, name):
            self.name = name

        def clock_edge(self, cycle, time):
            order.append(self.name)

    domain.add_component(Stage("commit"))
    domain.add_component(Stage("fetch"))
    domain.bind(engine)
    engine.run(until=0.0)
    assert order == ["commit", "fetch"]


def test_edge_hooks_run_after_components():
    engine = SimulationEngine()
    domain = ClockDomain(Clock("core", period=1.0))
    order = []
    domain.add_component(type("C", (), {"clock_edge": lambda self, c, t: order.append("component")})())
    domain.add_edge_hook(lambda cycle, time: order.append("hook"))
    domain.bind(engine)
    engine.run(until=0.0)
    assert order == ["component", "hook"]


def test_apply_slowdown_changes_period_and_voltage():
    domain = ClockDomain(Clock("fp", period=1.0), voltage=1.5)
    domain.apply_slowdown(2.0, voltage=1.1)
    assert domain.period == pytest.approx(2.0)
    assert domain.voltage == pytest.approx(1.1)


def test_apply_slowdown_after_bind_is_rejected():
    engine = SimulationEngine()
    domain = ClockDomain(Clock("fp", period=1.0))
    domain.bind(engine)
    with pytest.raises(SimulationError):
        domain.apply_slowdown(2.0)


def test_unbind_stops_clock():
    engine = SimulationEngine()
    domain = ClockDomain(Clock("core", period=1.0))
    counter = TickCounter()
    domain.add_component(counter)
    domain.bind(engine)
    engine.run(until=2.0)
    domain.unbind()
    engine.run(until=10.0)
    assert domain.cycle == 3  # edges at 0, 1, 2 only


def test_two_domains_with_different_periods():
    engine = SimulationEngine()
    fast = ClockDomain(Clock("fast", period=1.0))
    slow = ClockDomain(Clock("slow", period=3.0))
    fast_count, slow_count = TickCounter(), TickCounter()
    fast.add_component(fast_count)
    slow.add_component(slow_count)
    fast.bind(engine)
    slow.bind(engine)
    engine.run(until=9.0)
    assert len(fast_count.edges) == 10
    assert len(slow_count.edges) == 4
