"""Dynamic instruction trace format.

The processor timing models are *trace driven at the front end*: a workload
(either the functional executor running a real kernel, or the synthetic
profile-driven generator) supplies a stream of :class:`TraceInstruction`
records describing the correct execution path -- instruction class, register
dependences, memory address and branch outcome.  The pipeline model then adds
everything timing related: fetch/cache behaviour, wrong-path instructions
after mispredictions, queue occupancies, and so on.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Optional, Tuple

from .instructions import InstructionClass


@dataclass(slots=True)
class TraceInstruction:
    """One correct-path dynamic instruction."""

    index: int
    pc: int
    opclass: InstructionClass
    dest: Optional[int] = None
    sources: Tuple[int, ...] = ()
    mem_address: Optional[int] = None
    mem_size: int = 8
    is_branch: bool = False
    taken: bool = False
    target_pc: Optional[int] = None

    @property
    def is_load(self) -> bool:
        """True for memory loads."""
        return self.opclass is InstructionClass.LOAD

    @property
    def is_store(self) -> bool:
        """True for memory stores."""
        return self.opclass is InstructionClass.STORE

    @property
    def is_control(self) -> bool:
        """True for any control-flow instruction."""
        return self.opclass.is_control

    @property
    def is_fp(self) -> bool:
        """True for floating-point instructions."""
        return self.opclass.is_fp

    def next_pc(self) -> int:
        """Architectural next pc (after this instruction commits)."""
        if self.is_control and self.taken and self.target_pc is not None:
            return self.target_pc
        return self.pc + 4


class InstructionSource:
    """Iterator-style wrapper a fetch unit pulls correct-path instructions from.

    Implementations must be restartable from a pc only in the trivial sense a
    trace allows: the fetch unit never needs random access because wrong-path
    fetch uses synthetically generated instructions and recovery resumes the
    trace exactly where it left off.
    """

    def __init__(self, name: str = "trace") -> None:
        self.name = name

    def __iter__(self) -> Iterator[TraceInstruction]:  # pragma: no cover
        raise NotImplementedError

    def peek(self) -> Optional[TraceInstruction]:  # pragma: no cover
        """The next instruction without consuming it (None when exhausted)."""
        raise NotImplementedError

    def next(self) -> Optional[TraceInstruction]:  # pragma: no cover
        """Consume and return the next instruction (None when exhausted)."""
        raise NotImplementedError

    def exhausted(self) -> bool:  # pragma: no cover
        """True once every instruction has been consumed."""
        raise NotImplementedError


class ListTraceSource(InstructionSource):
    """An :class:`InstructionSource` backed by an in-memory list."""

    def __init__(self, instructions, name: str = "trace") -> None:
        super().__init__(name)
        self._instructions = list(instructions)
        self._position = 0
        #: cache-warming replay plans derived from the instructions, keyed by
        #: cache line size; shared between copies of a memoized trace (see
        #: :func:`repro.workloads.registry.build_workload`)
        self._warm_plans: dict = {}

    def __len__(self) -> int:
        return len(self._instructions)

    def __iter__(self) -> Iterator[TraceInstruction]:
        return iter(self._instructions)

    def peek(self) -> Optional[TraceInstruction]:
        """The next instruction without consuming it (None when exhausted)."""
        if self._position >= len(self._instructions):
            return None
        return self._instructions[self._position]

    def next(self) -> Optional[TraceInstruction]:
        """Consume and return the next instruction (None when exhausted)."""
        position = self._position
        instructions = self._instructions
        if position >= len(instructions):
            return None
        self._position = position + 1
        return instructions[position]

    def exhausted(self) -> bool:
        """True once every instruction has been consumed."""
        return self._position >= len(self._instructions)

    def reset(self) -> None:
        """Rewind to the beginning (used when re-running the same workload)."""
        self._position = 0

    @property
    def remaining(self) -> int:
        """Number of instructions not yet consumed."""
        return len(self._instructions) - self._position
