"""Tests for the benchmark-trajectory analysis and ``repro bench history``."""

import json

from repro.analysis.bench_history import (history_rows, history_table,
                                          load_history, record_backend,
                                          record_cohort, record_minor)
from repro.cli import main


def _record(timestamp, *, minor="3.11", backend=None, smoke=False,
            mixed=None, gals=None):
    record = {"timestamp": timestamp, "python_minor": minor}
    if backend is not None:
        record["backend"] = backend
    if smoke:
        record["smoke"] = True
    if mixed is not None:
        record["engine_events_per_sec"] = {
            "mixed": {"wheel": mixed, "seed_engine_live": mixed / 2.0}}
    if gals is not None:
        record["full_run"] = {"gals": {"instr_per_sec": gals}}
    return record


# ----------------------------------------------------------- record identity
def test_record_identity_helpers():
    assert record_backend({}) == "pure"
    assert record_backend({"backend": "compiled"}) == "compiled"
    assert record_minor({"python_minor": "3.11"}) == "3.11"
    assert record_minor({"python": "3.12.4"}) == "3.12"
    assert record_minor({}) is None
    assert record_cohort({"python_minor": "3.11",
                          "backend": "compiled"}) == ("3.11", "compiled")


# ----------------------------------------------------------------- flag rules
def test_regression_flagged_within_cohort_only():
    history = [
        _record("a", mixed=1_000_000.0),
        # different cohort (compiled): huge drop vs "a" must NOT flag
        _record("b", backend="compiled", mixed=100.0),
        # same cohort as "a": >25% drop must flag
        _record("c", mixed=500_000.0),
    ]
    rows = history_rows(history, threshold=0.25)
    mixed_col = 5  # METRICS index of "mixed ev/s"
    assert rows[1]["flags"][mixed_col] == ""
    assert rows[2]["flags"][mixed_col] == "!"


def test_smoke_records_shown_but_never_baseline():
    history = [
        _record("a", mixed=1_000_000.0),
        _record("b", smoke=True, mixed=10.0),
        # compared against "a" (full), not the smoke record: no flag
        _record("c", mixed=950_000.0),
    ]
    rows = history_rows(history)
    assert [row["smoke"] for row in rows] == [False, True, False]
    assert rows[2]["flags"][5] == ""


def test_normalise_divides_by_seed_engine_rate():
    rows = history_rows([_record("a", mixed=1_000_000.0)], normalise=True)
    # seed yardstick is mixed/2 in the fixture, so the ratio is exactly 2
    assert rows[0]["values"][5] == 2.0


def test_history_table_renders_all_records():
    history = [
        _record("2026-01-01", gals=10_000.0, mixed=2_000_000.0),
        _record("2026-01-02", backend="compiled", smoke=True),
    ]
    text = history_table(history)
    assert "timestamp" in text and "mixed ev/s" in text
    assert "2026-01-01" in text and "2026-01-02" in text
    assert "compiled" in text and "smoke" in text
    # absent metrics render as "-"
    assert " - " in text or text.rstrip().endswith("-")


def test_load_history_wraps_single_record(tmp_path):
    path = tmp_path / "BENCH_sim_core.json"
    path.write_text(json.dumps(_record("solo")))
    assert [r["timestamp"] for r in load_history(path)] == ["solo"]


# ------------------------------------------------------------------ CLI level
def run_cli(capsys, *argv):
    code = main(list(argv))
    captured = capsys.readouterr()
    return code, captured.out, captured.err


def test_cli_bench_history(tmp_path, capsys):
    path = tmp_path / "BENCH_sim_core.json"
    path.write_text(json.dumps([
        _record("2026-01-01", gals=12_345.0, mixed=3_000_000.0),
        _record("2026-01-02", backend="compiled", mixed=5_000_000.0),
    ]))
    code, out, _ = run_cli(capsys, "bench", "history",
                           "--bench-file", str(path))
    assert code == 0
    assert "2 records" in out
    assert "compiled" in out
    code, out, _ = run_cli(capsys, "bench", "history",
                           "--bench-file", str(path), "--normalise")
    assert code == 0
    assert "ratios" in out


def test_cli_bench_history_missing_file(tmp_path, capsys):
    code, _, err = run_cli(capsys, "bench", "history",
                           "--bench-file", str(tmp_path / "nope.json"))
    assert code == 2
    assert "error" in err


def test_cli_list_backends(capsys):
    code, out, _ = run_cli(capsys, "list", "backends")
    assert code == 0
    assert "engine kernel backends" in out
    assert "pure" in out and "compiled" in out
    assert "<- default" in out
