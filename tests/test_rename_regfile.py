"""Unit tests for physical register file, rename logic and checkpoints."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.isa.instructions import InstructionClass
from repro.isa.registers import ZERO_REG, fp_reg, int_reg
from repro.isa.trace import TraceInstruction
from repro.uarch.instruction import DynamicInstruction
from repro.uarch.regfile import ALWAYS_READY, PhysicalRegisterFile
from repro.uarch.rename import RegisterAliasTable, RenameError


def make_instr(dest=None, sources=(), opclass=InstructionClass.INT_ALU, pc=0x400000):
    trace = TraceInstruction(index=0, pc=pc, opclass=opclass, dest=dest,
                             sources=tuple(sources),
                             is_branch=opclass is InstructionClass.BRANCH)
    return DynamicInstruction(trace, epoch=0)


def no_forwarding(producer, consumer):
    return 0.0


# ----------------------------------------------------------------- register file
def test_initial_state_covers_architectural_registers():
    regfile = PhysicalRegisterFile()
    assert regfile.int_in_use == 32
    assert regfile.fp_in_use == 32
    assert regfile.free_int_count == 40
    assert regfile.free_fp_count == 40
    mapping = regfile.initial_mapping()
    assert mapping[int_reg(5)] == 5
    assert mapping[fp_reg(5)] == 72 + 5


def test_allocate_and_free_cycle():
    regfile = PhysicalRegisterFile()
    allocated = [regfile.allocate(for_fp=False) for _ in range(40)]
    assert all(p is not None for p in allocated)
    assert regfile.allocate(for_fp=False) is None
    assert regfile.allocation_failures == 1
    regfile.free(allocated[0])
    assert regfile.allocate(for_fp=False) == allocated[0]


def test_double_free_raises():
    regfile = PhysicalRegisterFile()
    phys = regfile.allocate(for_fp=True)
    regfile.free(phys)
    with pytest.raises(ValueError):
        regfile.free(phys)


def test_readiness_same_domain_and_cross_domain():
    regfile = PhysicalRegisterFile()
    phys = regfile.allocate(for_fp=False)
    regfile.mark_pending(phys)

    def forwarding(producer, consumer):
        return 1.5 if producer != consumer else 0.0

    assert not regfile.is_ready(phys, 100.0, "integer", forwarding)
    regfile.mark_ready(phys, 10.0, "memory")
    # same domain: ready at the produce time
    assert regfile.is_ready(phys, 10.0, "memory", forwarding)
    # cross domain: ready only after the forwarding latency
    assert not regfile.is_ready(phys, 11.0, "integer", forwarding)
    assert regfile.is_ready(phys, 11.5, "integer", forwarding)
    assert regfile.visible_ready_time(phys, "integer", forwarding) == pytest.approx(11.5)


def test_architectural_values_always_ready():
    regfile = PhysicalRegisterFile()
    assert regfile.ready_time(3) == ALWAYS_READY
    assert regfile.is_ready(3, 0.0, "integer", no_forwarding)


def test_regfile_requires_coverage_of_architectural_state():
    with pytest.raises(ValueError):
        PhysicalRegisterFile(num_int=16, num_fp=72)


# ------------------------------------------------------------------------ rename
def test_rename_allocates_and_maps():
    regfile = PhysicalRegisterFile()
    rat = RegisterAliasTable(regfile)
    instr = make_instr(dest=int_reg(1), sources=(int_reg(2), int_reg(3)))
    assert rat.rename(instr)
    assert instr.phys_sources == (2, 3)
    assert instr.phys_dest is not None and instr.phys_dest >= 32
    assert instr.prev_phys_dest == 1
    assert rat.lookup(int_reg(1)) == instr.phys_dest
    # a consumer renamed later reads the new mapping
    consumer = make_instr(dest=int_reg(4), sources=(int_reg(1),))
    rat.rename(consumer)
    assert consumer.phys_sources == (instr.phys_dest,)


def test_rename_zero_register_creates_no_dependence():
    regfile = PhysicalRegisterFile()
    rat = RegisterAliasTable(regfile)
    instr = make_instr(dest=ZERO_REG, sources=(ZERO_REG, int_reg(2)))
    assert rat.rename(instr)
    assert instr.phys_dest is None
    assert instr.phys_sources == (2,)


def test_rename_fails_cleanly_when_regfile_exhausted():
    regfile = PhysicalRegisterFile()
    rat = RegisterAliasTable(regfile)
    for _ in range(40):
        assert rat.rename(make_instr(dest=int_reg(1)))
    blocked = make_instr(dest=int_reg(2))
    assert not rat.rename(blocked)
    assert blocked.phys_dest is None


def test_checkpoint_restore_undoes_younger_renames():
    regfile = PhysicalRegisterFile()
    rat = RegisterAliasTable(regfile)
    older = make_instr(dest=int_reg(1))
    rat.rename(older)
    branch = make_instr(opclass=InstructionClass.BRANCH, sources=(int_reg(1),))
    rat.rename(branch)
    checkpoint = rat.take_checkpoint(branch.seq)
    younger = make_instr(dest=int_reg(1))
    rat.rename(younger)
    assert rat.lookup(int_reg(1)) == younger.phys_dest
    rat.restore(checkpoint)
    assert rat.lookup(int_reg(1)) == older.phys_dest
    assert rat.restores == 1


def test_restore_discards_younger_checkpoints():
    regfile = PhysicalRegisterFile()
    rat = RegisterAliasTable(regfile)
    first = rat.take_checkpoint(10)
    second = rat.take_checkpoint(20)
    rat.restore(first)
    assert rat.live_checkpoints == 0
    with pytest.raises(RenameError):
        rat.restore(second)


def test_release_checkpoint_is_idempotent():
    rat = RegisterAliasTable(PhysicalRegisterFile())
    checkpoint = rat.take_checkpoint(1)
    rat.release_checkpoint(checkpoint)
    rat.release_checkpoint(checkpoint)  # no error
    assert rat.live_checkpoints == 0


@settings(max_examples=30, deadline=None)
@given(st.lists(st.integers(min_value=1, max_value=31), min_size=1, max_size=39))
def test_property_rename_then_free_conserves_registers(dests):
    """Renaming N instructions and freeing their previous mappings keeps the
    total number of allocated physical registers equal to the architectural
    state plus the live in-flight destinations."""
    regfile = PhysicalRegisterFile()
    rat = RegisterAliasTable(regfile)
    instrs = []
    for dest in dests:
        instr = make_instr(dest=int_reg(dest))
        assert rat.rename(instr)
        instrs.append(instr)
    assert regfile.int_in_use == 32 + len(instrs)
    # commit them all: free the previous mapping of each
    for instr in instrs:
        regfile.free(instr.prev_phys_dest)
    assert regfile.int_in_use == 32
