"""Table 1: global clock skew trends across process generations.

Regenerates the case-study table (published data plus the derived
skew-per-cycle column) and checks the trend the paper's argument relies on:
skew budgets shrink while device counts explode, so by the 0.18 um generation
un-deskewed global skew approaches 10 % of the cycle time.
"""

from repro.analysis import CLOCK_SKEW_CASES, clock_skew_table, projected_skew_fraction

import pytest

#: figure-reproduction benchmarks are tier-2: heavy, skipped by tier-1
pytestmark = pytest.mark.slow


def test_table1_clock_skew_trends(benchmark):
    table = benchmark(clock_skew_table)
    print("\n=== Table 1: Trends in global clock skew ===")
    print(table)
    projection = projected_skew_fraction(0.13)
    print(f"\nProjected (un-deskewed) skew fraction at 0.13 um: {projection:.1%}")

    undeskewed_itanium = [c for c in CLOCK_SKEW_CASES if "without" in c.design][0]
    assert 0.07 < undeskewed_itanium.skew_fraction_of_cycle < 0.11
    demands = [c.devices_per_ps_of_skew for c in CLOCK_SKEW_CASES
               if "without" not in c.design]
    assert demands == sorted(demands)
    assert projection > undeskewed_itanium.skew_fraction_of_cycle * 0.8
