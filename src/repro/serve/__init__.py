"""``repro serve``: an HTTP results service in front of the results store.

:class:`~repro.serve.service.ResultsService` answers scenario queries from
the content-addressed results store over a small JSON API (stdlib
``ThreadingHTTPServer``; no extra dependencies): a stored result is served
bit-identically to ``repro run --json``, a miss is acknowledged with *202
Accepted* and queued for a background sweep over the service's configured
job backend, and a later repeat of the same query is a hit.
:mod:`repro.serve.client` is the matching stdlib client used by
``repro query``.
"""

from .client import (QueryReply, query_compare, query_health, query_scenario,
                     request_json, scenario_query_url)
from .service import ResultsService

__all__ = [
    "QueryReply",
    "ResultsService",
    "query_compare",
    "query_health",
    "query_scenario",
    "request_json",
    "scenario_query_url",
]
