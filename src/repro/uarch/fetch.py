"""Instruction fetch unit (clock domain 1: I-cache + branch predictor).

Per clock edge the fetch unit reads up to ``fetch_width`` instructions from
the correct-path trace, predicts conditional branches, and pushes the fetched
instructions into the fetch->decode channel (a plain pipeline queue in the
synchronous machine, a mixed-clock FIFO in the GALS machine).

Misprediction handling is where the GALS performance loss largely comes from:
when a branch is fetched with a wrong prediction the fetch unit keeps fetching
*wrong-path* instructions -- synthesised by the workload -- until the redirect
message, sent by the execution cluster at branch resolution, arrives through
the redirect channel.  In the GALS machine that message has to cross a FIFO
into the fetch clock domain, so the wrong-path episode is longer and more
speculative work is wasted (Figure 8), and the recovery pipeline is
effectively longer (Section 5.1).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

from ..isa.instructions import InstructionClass
from ..isa.program import INSTRUCTION_SIZE
from ..isa.trace import InstructionSource, ListTraceSource, TraceInstruction
from ..memory.hierarchy import MemoryHierarchy
from ..sim.channel import Channel
from .branch_predictor import BranchUnit
from .instruction import DynamicInstruction


@dataclass
class RedirectMessage:
    """Message sent from branch resolution back to fetch."""

    epoch: int
    branch_seq: int
    resume_pc: int


def _default_wrong_path(pc: int, offset: int) -> TraceInstruction:
    """Fallback wrong-path instruction generator (simple integer mix)."""
    classes = (InstructionClass.INT_ALU, InstructionClass.INT_ALU,
               InstructionClass.LOAD, InstructionClass.INT_ALU)
    opclass = classes[offset % len(classes)]
    return TraceInstruction(index=-1, pc=pc, opclass=opclass, dest=1 + (offset % 20),
                            sources=(1 + ((offset * 3) % 20),),
                            mem_address=0x2000_0000 + (offset * 64) % 65536
                            if opclass is InstructionClass.LOAD else None)


class FetchUnit:
    """Fetches from the trace through an I-cache and branch predictor."""

    def __init__(
        self,
        source: InstructionSource,
        output_channel: Channel,
        redirect_channel: Channel,
        branch_unit: BranchUnit,
        memory: MemoryHierarchy,
        clock_period: Callable[[], float],
        activity,
        fetch_width: int = 4,
        wrong_path_generator: Optional[Callable[[int, int], TraceInstruction]] = None,
    ) -> None:
        self.source = source
        #: direct view of a list-backed source (the common case): peeking and
        #: consuming happen once per fetched instruction, so the method-call
        #: round trips through InstructionSource are inlined when possible
        self._source_list = (source._instructions
                             if isinstance(source, ListTraceSource) else None)
        self.output_channel = output_channel
        self.redirect_channel = redirect_channel
        self.branch_unit = branch_unit
        self.memory = memory
        self.clock_period = clock_period
        self.activity = activity
        #: direct handles on the per-cycle counter cells (see DecodeRenameUnit)
        self._icache_cell = activity.cell("icache")
        self._bpred_cell = activity.cell("bpred")
        self.fetch_width = fetch_width
        self.wrong_path_generator = wrong_path_generator or _default_wrong_path

        self.epoch = 0
        self.wrong_path_mode = False
        self._wrong_path_pc = 0
        self._wrong_path_offset = 0
        self._busy_until = float("-inf")
        # Same-line fetch fast path: a repeat hit on the hierarchy's
        # remembered fetch line is just the statistics increments.  The
        # remembered line itself lives on the MemoryHierarchy (one source of
        # truth -- its flush() is the invalidation point); reading it here
        # only short-circuits the call.
        self._line_size = memory.config.line_size

        # statistics
        self.fetched_total = 0
        self.fetched_wrong_path = 0
        self.fetch_stall_cycles = 0
        self.icache_stall_cycles = 0
        self.redirects_received = 0
        #: run-length-deferred fetch-queue occupancy sampling: consecutive
        #: edges observing the same queue length accumulate in ``_sample_run``
        #: and are folded into the channel's integer counters on change/read
        self._sample_len = -1
        self._sample_run = 0

    # ---------------------------------------------------------------- helpers
    def _check_redirect(self, now: float) -> None:
        pop_ready = self.redirect_channel.pop_ready
        while True:
            message: RedirectMessage = pop_ready(now)
            if message is None:
                break
            self.redirects_received += 1
            if message.epoch > self.epoch:
                self.epoch = message.epoch
                self.wrong_path_mode = False
                # Abandon any wrong-path I-cache miss in flight: the front end
                # restarts on the correct path immediately.
                self._busy_until = now

    def _enter_wrong_path(self, after_pc: int) -> None:
        self.wrong_path_mode = True
        self._wrong_path_pc = after_pc + INSTRUCTION_SIZE
        self._wrong_path_offset = 0

    # --------------------------------------------------------------- clocking
    def clock_edge(self, cycle: int, time: float) -> None:
        """One fetch-domain cycle: honour redirects, fetch up to ``fetch_width`` instructions into the fetch queue."""
        if self.redirect_channel._entries:
            self._check_redirect(time)
        output_channel = self.output_channel
        entries_len = len(output_channel._entries)
        if entries_len == self._sample_len:
            self._sample_run += 1
        else:
            run = self._sample_run
            if run:
                self._sample_run = 0
                output_channel.occupancy_samples += run
                output_channel.occupancy_accum += self._sample_len * run
            output_channel.occupancy_samples += 1
            output_channel.occupancy_accum += entries_len
            self._sample_len = entries_len
        if time < self._busy_until:
            self.icache_stall_cycles += 1
            return
        wrong_path = self.wrong_path_mode
        if wrong_path:
            first_pc = self._wrong_path_pc
        else:
            source_list = self._source_list
            if source_list is not None:
                position = self.source._position
                if position >= len(source_list):
                    return
                first_pc = source_list[position].pc
            else:
                peeked = self.source.peek()
                if peeked is None:
                    return
                first_pc = peeked.pc

        self._icache_cell[0] += 1
        memory = self.memory
        line = first_pc // self._line_size
        if line == memory._last_fetch_line:
            stats = memory.icache.stats
            stats.accesses += 1
            stats.hits += 1
        else:
            latency = memory.fetch_access(first_pc)
            if latency > memory.config.il1_latency:
                # Miss: the front end stalls until the line arrives.
                self._busy_until = time + latency * self.clock_period()
                self.icache_stall_cycles += 1
                return

        # The correct-path, list-backed case (every real workload) is inlined:
        # it runs once per fetched instruction.  Wrong-path and generic
        # sources go through _fetch_one.  A mispredicted branch flips
        # wrong_path_mode but also ends the group, so the mode chosen here is
        # stable for the whole loop.
        source_list = None if wrong_path else self._source_list
        source = self.source
        branch_unit = self.branch_unit
        epoch = self.epoch
        # Producer-side space is stable within the cycle (consumers pop on
        # their own edges): one grant count covers the whole fetch group.
        free = output_channel.free_slots(time)
        fetched_this_cycle = 0
        while fetched_this_cycle < self.fetch_width:
            if free <= 0:
                output_channel.record_full_stall()
                self.fetch_stall_cycles += 1
                break
            if source_list is not None:
                position = source._position
                if position >= len(source_list):
                    break
                source._position = position + 1
                trace = source_list[position]
                instr = DynamicInstruction(trace, epoch=epoch,
                                           wrong_path=False)
                instr.fetch_time = time
                self.fetched_total += 1
                if trace.is_branch:
                    predicted_taken, _target = branch_unit.predict(trace.pc)
                    self._bpred_cell[0] += 1
                    instr.predicted_taken = predicted_taken
                    if predicted_taken != trace.taken:
                        instr.mispredicted = True
                        self._enter_wrong_path(trace.pc)
                elif instr.is_control:
                    # Unconditional jumps: correctly predicted (BTB hit).
                    self._bpred_cell[0] += 1
                    instr.predicted_taken = True
            else:
                instr = self._fetch_one(time)
                if instr is None:
                    break
            output_channel.push_granted(instr, time)
            free -= 1
            fetched_this_cycle += 1
            # A predicted-taken control instruction ends the fetch group.
            if instr.is_control and (instr.predicted_taken or instr.trace.opclass
                                     is InstructionClass.JUMP):
                break
            # A misprediction also ends useful fetching for this group; wrong
            # path continues next cycle.
            if instr.mispredicted:
                break

    def _next_pc_hint(self) -> Optional[int]:
        if self.wrong_path_mode:
            return self._wrong_path_pc
        peeked = self.source.peek()
        return peeked.pc if peeked is not None else None

    def _fetch_one(self, time: float) -> Optional[DynamicInstruction]:
        if self.wrong_path_mode:
            trace = self.wrong_path_generator(self._wrong_path_pc,
                                              self._wrong_path_offset)
            self._wrong_path_pc += INSTRUCTION_SIZE
            self._wrong_path_offset += 1
            instr = DynamicInstruction(trace, epoch=self.epoch, wrong_path=True)
            instr.fetch_time = time
            self.fetched_total += 1
            self.fetched_wrong_path += 1
            return instr

        source_list = self._source_list
        if source_list is not None:
            source = self.source
            position = source._position
            if position >= len(source_list):
                return None
            source._position = position + 1
            trace = source_list[position]
        else:
            trace = self.source.next()
            if trace is None:
                return None
        instr = DynamicInstruction(trace, epoch=self.epoch, wrong_path=False)
        instr.fetch_time = time
        self.fetched_total += 1

        if trace.is_branch:
            predicted_taken, _predicted_target = self.branch_unit.predict(trace.pc)
            self._bpred_cell[0] += 1
            instr.predicted_taken = predicted_taken
            if predicted_taken != trace.taken:
                instr.mispredicted = True
                self._enter_wrong_path(trace.pc)
        elif instr.is_control:
            # Unconditional jumps are assumed correctly predicted (BTB hit).
            self._bpred_cell[0] += 1
            instr.predicted_taken = True
        return instr

    def flush_samples(self) -> None:
        """Fold the deferred fetch-queue occupancy run into the counters."""
        run = self._sample_run
        if run:
            self._sample_run = 0
            channel = self.output_channel
            channel.occupancy_samples += run
            channel.occupancy_accum += self._sample_len * run

    # ------------------------------------------------------------------ state
    def pending_work(self) -> int:
        """Items still queued toward decode (used by the drain check)."""
        return self.output_channel.occupancy
