"""Clock-domain partitioning of the GALS processor (paper Section 4.1).

The GALS machine has five clock domains, chosen to mirror the 21264's
major-clock partitioning (Figure 3b):

1. ``fetch``   -- L1 instruction cache and branch prediction unit,
2. ``decode``  -- decode, register rename, register files, dispatch and commit,
3. ``integer`` -- integer issue queue and integer ALUs,
4. ``fp``      -- floating-point issue queue and FP ALUs,
5. ``memory``  -- memory issue queue, data cache and L2.

:class:`ClockPlan` captures how those domains are clocked in one experiment:
a common base period, a per-domain slowdown, a per-domain phase (random in the
GALS experiments) and optionally a per-domain supply voltage derived from the
slowdown (the multiple-voltage experiments of Section 5.2).
"""

from __future__ import annotations

import random
import re
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping, Optional, Tuple

from ..power.technology import DEFAULT_TECHNOLOGY, TechnologyParameters
from ..power.voltage import voltage_for_slowdown
from ..sim.clock import Clock, ClockDomain

#: Canonical domain names, in pipeline order.
DOMAIN_FETCH = "fetch"
DOMAIN_DECODE = "decode"
DOMAIN_INTEGER = "integer"
DOMAIN_FP = "fp"
DOMAIN_MEMORY = "memory"
GALS_DOMAINS: Tuple[str, ...] = (DOMAIN_FETCH, DOMAIN_DECODE, DOMAIN_INTEGER,
                                 DOMAIN_FP, DOMAIN_MEMORY)

#: Single-domain name used by the synchronous baseline.
SYNC_DOMAIN = "core"

#: The five locally synchronous *blocks* of the machine (Figure 3b).  A
#: topology assigns each block to a clock domain; the paper's GALS machine
#: gives every block its own domain, the synchronous baseline puts all five
#: into one.  Block names intentionally equal the paper's domain names so the
#: canonical 5-domain topology is the identity assignment.
BLOCKS: Tuple[str, ...] = GALS_DOMAINS

#: Structural inter-block links of the pipeline: (channel name, producer
#: block, consumer block).  A topology turns each link into either a plain
#: pipeline queue (both endpoints in the same domain) or a mixed-clock FIFO
#: (endpoints in different domains).
BLOCK_LINKS: Tuple[Tuple[str, str, str], ...] = (
    ("fetch->decode", DOMAIN_FETCH, DOMAIN_DECODE),
    ("dispatch->int", DOMAIN_DECODE, DOMAIN_INTEGER),
    ("dispatch->fp", DOMAIN_DECODE, DOMAIN_FP),
    ("dispatch->mem", DOMAIN_DECODE, DOMAIN_MEMORY),
    ("redirect", DOMAIN_INTEGER, DOMAIN_FETCH),
)


def base_block(block: str) -> str:
    """Canonical block a (possibly replicated) block derives from.

    Replicated-cluster topologies name their extra execution blocks by
    suffixing a replica number onto a canonical block ("integer2", "fp3");
    stripping the suffix recovers the canonical block whose energy model,
    area and policy slowdowns the replica inherits.  Canonical names pass
    through unchanged.
    """
    stripped = block.rstrip("0123456789")
    return stripped if stripped in BLOCKS else block

#: Table 2: pipeline stage -> clock domains involved.
PIPELINE_STAGES: Tuple[Tuple[int, str, Tuple[str, ...]], ...] = (
    (1, "Fetch from I-cache", (DOMAIN_FETCH,)),
    (2, "Decode", (DOMAIN_DECODE,)),
    (3, "Register rename, Regfile read", (DOMAIN_DECODE,)),
    (4, "Dispatch into issue queue",
     (DOMAIN_DECODE, DOMAIN_INTEGER, DOMAIN_FP, DOMAIN_MEMORY)),
    (5, "Issue to functional unit", (DOMAIN_INTEGER, DOMAIN_FP, DOMAIN_MEMORY)),
    (6, "Execute", (DOMAIN_INTEGER, DOMAIN_FP, DOMAIN_MEMORY)),
    (7, "Wakeup, Writeback", (DOMAIN_INTEGER, DOMAIN_FP, DOMAIN_MEMORY)),
    (8, "Regfile write, Commit",
     (DOMAIN_INTEGER, DOMAIN_FP, DOMAIN_MEMORY, DOMAIN_DECODE)),
)


def pipeline_stage_table() -> str:
    """Render Table 2 (pipeline stages and the domains involved)."""
    lines = [f"{'Stage':<6} {'Operation':<34} Domains"]
    for number, operation, domains in PIPELINE_STAGES:
        lines.append(f"{number:<6} {operation:<34} {', '.join(domains)}")
    return "\n".join(lines)


# ------------------------------------------------------------------ topology
@dataclass(frozen=True)
class Topology:
    """A clock-domain partitioning of the five locally synchronous blocks.

    The assignment maps every block in :data:`BLOCKS` to the name of the
    clock domain that clocks it.  The synchronous baseline is the degenerate
    one-domain topology; the paper's GALS machine is the identity assignment
    (every block its own domain); anything in between is a valid partitioning
    of the design space.
    """

    name: str
    description: str
    #: block name -> clock-domain name (must cover every block exactly once)
    assignment: Mapping[str, str]
    #: draw a random phase per domain from the plan's phase seed (the paper's
    #: GALS experiments randomise phases); the synchronous baseline pins
    #: every phase to zero instead
    random_phases: bool = True
    #: label stored in ``SimulationResult.processor`` (defaults to ``name``);
    #: lets the canonical topologies keep the historical 'base'/'gals' labels
    kind: str = ""
    #: the machine's locally synchronous blocks, in canonical order; defaults
    #: to the paper's five :data:`BLOCKS`.  Replicated-cluster topologies
    #: extend this with per-replica execution blocks ("integer2", "fp2", ...).
    blocks: Tuple[str, ...] = ()
    #: structural inter-block links (channel name, producer, consumer);
    #: defaults to the paper's :data:`BLOCK_LINKS`
    links: Tuple[Tuple[str, str, str], ...] = ()

    def __post_init__(self) -> None:
        if not self.blocks:
            object.__setattr__(self, "blocks", BLOCKS)
        if not self.links:
            object.__setattr__(self, "links", BLOCK_LINKS)
        missing = set(self.blocks) - set(self.assignment)
        extra = set(self.assignment) - set(self.blocks)
        if missing:
            raise ValueError(f"topology {self.name!r}: unassigned blocks "
                             f"{sorted(missing)}")
        if extra:
            raise ValueError(f"topology {self.name!r}: unknown blocks "
                             f"{sorted(extra)}")
        for block, domain in self.assignment.items():
            if not domain or not isinstance(domain, str):
                raise ValueError(f"topology {self.name!r}: block {block!r} "
                                 f"mapped to invalid domain {domain!r}")
        for link_name, producer, consumer in self.links:
            if producer not in self.assignment or consumer not in self.assignment:
                raise ValueError(f"topology {self.name!r}: link {link_name!r} "
                                 f"references unknown blocks")
        if not self.kind:
            object.__setattr__(self, "kind", self.name)

    # -------------------------------------------------------------- structure
    @property
    def domain_names(self) -> Tuple[str, ...]:
        """Domain names in first-appearance order over the topology's blocks.

        This order is load-bearing: it fixes both the per-domain random phase
        draws and the engine bind order, so the canonical topologies replay
        the seed tree's exact sequence.
        """
        seen: List[str] = []
        for block in self.blocks:
            domain = self.assignment[block]
            if domain not in seen:
                seen.append(domain)
        return tuple(seen)

    @property
    def num_domains(self) -> int:
        """Number of distinct clock domains in the assignment."""
        return len(self.domain_names)

    @property
    def is_synchronous(self) -> bool:
        """True when every block shares one clock (no mixed-clock FIFOs)."""
        return self.num_domains == 1

    def domain_of(self, block: str) -> str:
        """Clock domain name assigned to one block."""
        try:
            return self.assignment[block]
        except KeyError as exc:
            raise KeyError(f"topology {self.name!r} has no block {block!r}"
                           ) from exc

    def blocks_in(self, domain: str) -> Tuple[str, ...]:
        """Blocks clocked by one domain, in canonical block order."""
        return tuple(block for block in self.blocks
                     if self.assignment[block] == domain)

    def crosses(self, producer_block: str, consumer_block: str) -> bool:
        """Whether a link between two blocks crosses a domain boundary."""
        return (self.assignment[producer_block]
                != self.assignment[consumer_block])

    def edges(self) -> Tuple[Tuple[str, str, str], ...]:
        """Cross-domain links: (channel name, producer domain, consumer domain).

        Derived from the topology's structural ``links``; these are exactly
        the places the builder instantiates mixed-clock FIFOs and
        synchronizers.
        """
        return tuple(
            (name, self.assignment[producer], self.assignment[consumer])
            for name, producer, consumer in self.links
            if self.assignment[producer] != self.assignment[consumer])

    def describe(self) -> str:
        """Human-readable one-paragraph summary."""
        lines = [f"{self.name}: {self.description}",
                 f"  {self.num_domains} clock domain(s)"]
        for domain in self.domain_names:
            lines.append(f"    {domain:<10} {{{', '.join(self.blocks_in(domain))}}}")
        crossings = self.edges()
        if crossings:
            lines.append("  mixed-clock FIFOs: "
                         + ", ".join(f"{p}->{c} ({n})" for n, p, c in crossings))
        else:
            lines.append("  mixed-clock FIFOs: none (fully synchronous)")
        return "\n".join(lines)


# -------------------------------------------------------- topology registry
TOPOLOGIES: Dict[str, Topology] = {}
_TOPOLOGY_ALIASES: Dict[str, str] = {}


def register_topology(topology: Topology,
                      aliases: Iterable[str] = ()) -> Topology:
    """Register a topology (and optional aliases) for lookup by name."""
    aliases = tuple(aliases)
    # validate everything before mutating, so a failed call leaves the
    # registry untouched and can be retried
    if topology.name in TOPOLOGIES or topology.name in _TOPOLOGY_ALIASES:
        raise ValueError(f"topology {topology.name!r} already registered")
    for alias in aliases:
        if alias in TOPOLOGIES or alias in _TOPOLOGY_ALIASES:
            raise ValueError(f"topology alias {alias!r} already registered")
    TOPOLOGIES[topology.name] = topology
    for alias in aliases:
        _TOPOLOGY_ALIASES[alias] = topology.name
    return topology


#: Pattern of the parametric replicated-cluster family, ``cluster<N>``.
_CLUSTER_NAME = re.compile(r"^cluster(\d+)$")

#: Largest replication factor ``get_topology`` will synthesize on demand.
MAX_CLUSTER_REPLICAS = 16


def get_topology(name: str) -> Topology:
    """Look up a registered topology by name or alias.

    Members of the parametric ``cluster<N>`` family (1 <= N <=
    :data:`MAX_CLUSTER_REPLICAS`) are synthesized and registered on first
    use, so any ``clusterN`` name works without eager registration.
    """
    key = _TOPOLOGY_ALIASES.get(name, name)
    try:
        return TOPOLOGIES[key]
    except KeyError as exc:
        match = _CLUSTER_NAME.match(key)
        if match and 1 <= int(match.group(1)) <= MAX_CLUSTER_REPLICAS:
            return register_topology(make_cluster_topology(int(match.group(1))))
        raise KeyError(f"unknown topology {name!r}; known: "
                       f"{', '.join(sorted(TOPOLOGIES))}") from exc


def available_topologies() -> Tuple[str, ...]:
    """Registered topology names (aliases excluded), in registration order."""
    return tuple(TOPOLOGIES)


#: The fully synchronous baseline (Figure 3a): one global clock domain.
BASE_TOPOLOGY = register_topology(Topology(
    name="base",
    description="fully synchronous baseline: one global clock domain "
                "(Figure 3a)",
    assignment={block: SYNC_DOMAIN for block in BLOCKS},
    random_phases=False,
    kind="base",
), aliases=("sync",))

#: The paper's five-domain GALS machine (Figure 3b).
GALS5_TOPOLOGY = register_topology(Topology(
    name="gals5",
    description="the paper's 5-domain GALS partitioning: fetch / decode / "
                "integer / fp / memory (Figure 3b)",
    assignment={block: block for block in BLOCKS},
    kind="gals",
), aliases=("gals",))

#: Coarser, non-paper partitionings opening the design space.
FRONTBACK2_TOPOLOGY = register_topology(Topology(
    name="frontback2",
    description="2-domain front/back split: {fetch, decode} vs "
                "{integer, fp, memory}",
    assignment={DOMAIN_FETCH: "front", DOMAIN_DECODE: "front",
                DOMAIN_INTEGER: "back", DOMAIN_FP: "back",
                DOMAIN_MEMORY: "back"},
))

FEM3_TOPOLOGY = register_topology(Topology(
    name="fem3",
    description="3-domain fetch/exec/memory split: {fetch} / "
                "{decode, integer, fp} / {memory}",
    assignment={DOMAIN_FETCH: "fetch", DOMAIN_DECODE: "exec",
                DOMAIN_INTEGER: "exec", DOMAIN_FP: "exec",
                DOMAIN_MEMORY: "memory"},
))

ALU4_TOPOLOGY = register_topology(Topology(
    name="alu4",
    description="4-domain per-cluster variant merging the integer and FP "
                "clusters into one ALU domain",
    assignment={DOMAIN_FETCH: "fetch", DOMAIN_DECODE: "decode",
                DOMAIN_INTEGER: "alu", DOMAIN_FP: "alu",
                DOMAIN_MEMORY: "memory"},
))

MEMSPLIT2_TOPOLOGY = register_topology(Topology(
    name="memsplit2",
    description="2-domain memory split: the memory subsystem (memory issue "
                "queue, D-cache, L2) on its own clock",
    assignment={DOMAIN_FETCH: "cpu", DOMAIN_DECODE: "cpu",
                DOMAIN_INTEGER: "cpu", DOMAIN_FP: "cpu",
                DOMAIN_MEMORY: "mem"},
))


def make_cluster_topology(replicas: int) -> Topology:
    """Build the ``cluster<N>`` replicated-cluster topology.

    N integer/FP execution-cluster pairs share the fetch, decode and memory
    blocks; every block keeps its own clock domain (the GALS identity
    assignment), so ``cluster1`` is structurally the paper's five-domain
    machine and ``clusterN`` adds ``2*(N-1)`` domains and dispatch crossings
    on top.  Replica blocks are named "integer2"/"fp2" and so on; the
    primary cluster keeps the canonical names (and hosts all control
    instructions, so the single redirect link is unchanged).
    """
    if replicas < 1:
        raise ValueError("cluster topology needs at least one cluster pair")
    blocks = list(BLOCKS)
    links = list(BLOCK_LINKS)
    for k in range(2, replicas + 1):
        blocks += [f"{DOMAIN_INTEGER}{k}", f"{DOMAIN_FP}{k}"]
        links += [(f"dispatch->int{k}", DOMAIN_DECODE, f"{DOMAIN_INTEGER}{k}"),
                  (f"dispatch->fp{k}", DOMAIN_DECODE, f"{DOMAIN_FP}{k}")]
    return Topology(
        name=f"cluster{replicas}",
        description=f"replicated-cluster GALS machine: {replicas} integer/FP "
                    "cluster pair(s) sharing the fetch, decode and memory "
                    f"domains ({3 + 2 * replicas} clock domains)",
        assignment={block: block for block in blocks},
        blocks=tuple(blocks),
        links=tuple(links),
    )


#: Replicated-cluster topologies.  ``cluster1`` is the paper's machine under
#: the parametric naming; higher replica counts stress synchronizer and
#: mixed-clock-FIFO counts beyond the paper's five blocks.  Other ``clusterN``
#: members are synthesized on demand by :func:`get_topology`.
CLUSTER1_TOPOLOGY = register_topology(make_cluster_topology(1))
CLUSTER2_TOPOLOGY = register_topology(make_cluster_topology(2))
CLUSTER4_TOPOLOGY = register_topology(make_cluster_topology(4))


@dataclass
class ClockPlan:
    """Clocking (and optional voltage) assignment for one simulation run."""

    #: period of the nominal clock, in ns (1 GHz by default)
    base_period: float = 1.0
    #: per-domain slowdown factor (1.0 = nominal; 1.1 = 10 % slower clock)
    slowdowns: Dict[str, float] = field(default_factory=dict)
    #: per-domain starting phase in ns; missing domains get a random phase
    #: drawn from ``phase_seed`` (the paper randomises phases at run time)
    phases: Dict[str, float] = field(default_factory=dict)
    #: explicit per-domain supply voltages; overrides ``scale_voltages``
    voltages: Dict[str, float] = field(default_factory=dict)
    #: derive each slowed domain's voltage from Equation 1 when True
    scale_voltages: bool = False
    phase_seed: int = 0
    technology: TechnologyParameters = DEFAULT_TECHNOLOGY

    def slowdown_of(self, domain: str) -> float:
        """Slowdown factor of one domain (1.0 when unlisted)."""
        slowdown = self.slowdowns.get(domain, 1.0)
        if slowdown <= 0:
            raise ValueError(f"slowdown for domain {domain!r} must be positive")
        return slowdown

    def period_of(self, domain: str) -> float:
        """Concrete clock period of one domain, in ns."""
        return self.base_period * self.slowdown_of(domain)

    def voltage_of(self, domain: str) -> float:
        """Supply voltage of one domain: explicit, Equation-1 scaled, or nominal."""
        if domain in self.voltages:
            return self.voltages[domain]
        if self.scale_voltages:
            return voltage_for_slowdown(self.slowdown_of(domain), self.technology)
        return self.technology.nominal_vdd

    def phase_of(self, domain: str, rng: random.Random) -> float:
        """Starting phase of one domain: pinned if listed, else drawn from ``rng``."""
        if domain in self.phases:
            return self.phases[domain] % self.period_of(domain)
        return rng.uniform(0.0, self.period_of(domain))

    # ------------------------------------------------------------- factories
    def build_domains(self, topology: Topology) -> Dict[str, ClockDomain]:
        """Create the clock domains of one topology, in canonical order.

        Domains are created (and random phases drawn) in the topology's
        ``domain_names`` order; the canonical ``gals5`` topology therefore
        consumes the phase RNG exactly as the paper's hand-wired 5-domain
        build did, and the one-domain ``base`` topology gets the pinned
        zero-phase global clock of the synchronous machine.
        """
        rng = random.Random(self.phase_seed)
        domains: Dict[str, ClockDomain] = {}
        for name in topology.domain_names:
            period = self.period_of(name)
            if topology.random_phases or name in self.phases:
                phase = self.phase_of(name, rng)
            else:
                phase = 0.0
            clock = Clock(name=name, period=period, phase=phase)
            domains[name] = ClockDomain(
                clock,
                voltage=self.voltage_of(name),
                nominal_voltage=self.technology.nominal_vdd,
            )
        return domains

    def build_gals_domains(self) -> Dict[str, ClockDomain]:
        """Create the five independent clock domains of the GALS machine."""
        return self.build_domains(GALS5_TOPOLOGY)

    def build_sync_domain(self) -> ClockDomain:
        """Create the single global clock domain of the base machine.

        A global slowdown may be requested via ``slowdowns['core']`` (used for
        the "ideal" voltage-scaled synchronous reference of Figures 12-13).
        """
        return self.build_domains(BASE_TOPOLOGY)[SYNC_DOMAIN]


def uniform_plan(base_period: float = 1.0, phase_seed: int = 0) -> ClockPlan:
    """All domains at the nominal frequency (experiment set 1, Section 5.1)."""
    return ClockPlan(base_period=base_period, phase_seed=phase_seed)


def slowdown_plan(slowdowns: Mapping[str, float],
                  base_period: float = 1.0,
                  scale_voltages: bool = True,
                  phase_seed: int = 0,
                  technology: TechnologyParameters = DEFAULT_TECHNOLOGY,
                  allowed_domains: Optional[Iterable[str]] = None) -> ClockPlan:
    """Per-domain slowdowns with (by default) Equation-1 voltage scaling.

    ``allowed_domains`` names the clock domains the plan may address; it
    defaults to the paper's five GALS domains plus the synchronous core, and
    callers targeting a non-canonical topology pass that topology's domain
    names instead.
    """
    if allowed_domains is None:
        allowed_domains = (*GALS_DOMAINS, SYNC_DOMAIN)
    unknown = set(slowdowns) - set(allowed_domains)
    if unknown:
        raise ValueError(f"unknown clock domains in slowdown plan: {sorted(unknown)}")
    return ClockPlan(base_period=base_period, slowdowns=dict(slowdowns),
                     scale_voltages=scale_voltages, phase_seed=phase_seed,
                     technology=technology)
