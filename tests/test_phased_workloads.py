"""Property suite for phase-structured workloads (``phased:<mix>``).

Pins the contracts the phased-workload subsystem rests on:

* the phase plan is exact arithmetic -- phases are contiguous, cover the
  instruction budget precisely, and oscillating schedules place boundaries
  at multiples of the mix period;
* composition -- a phase's records equal exactly what its segment generator
  would produce standalone with the phase seed (no cross-phase RNG bleed);
* determinism -- rebuilds, spawn-pool sweep workers and results-store round
  trips all produce bit-identical results;
* the ``build_workload`` memo never aliases across mixes, seeds or budgets.
"""

import json
from dataclasses import replace

import pytest

from repro.cli import main
from repro.core.scenario import run_scenario, sweep_scenarios
from repro.results import ResultsStore
from repro.workloads import (PHASED_PREFIX, WORKLOAD_MIXES, PhasedMix,
                             PhasedWorkload, available_mixes, get_mix,
                             get_profile)
from repro.workloads.kernels import KERNELS
from repro.workloads.profiles import PHASE_OSCILLATING, PHASE_STATIC
from repro.workloads.registry import (WORKLOADS, available_workloads,
                                      build_workload)
from repro.workloads.synthetic import SyntheticWorkload

SMALL = 600


def osc(seed=1):
    return PhasedWorkload(get_mix("intfp-osc"), seed=seed)


# ----------------------------------------------------------------- phase plan
def test_plan_is_contiguous_and_covers_the_budget_exactly():
    for mix in WORKLOAD_MIXES.values():
        for budget in (1, 37, 400, 997, 2400):
            plan = PhasedWorkload(mix, seed=3).plan(budget)
            assert plan[0].start == 0
            assert plan[-1].end == budget
            for before, after in zip(plan, plan[1:]):
                assert after.start == before.end
            assert all(p.length > 0 for p in plan)
            assert [p.index for p in plan] == list(range(len(plan)))


def test_oscillating_plan_places_boundaries_on_period_multiples():
    mix = get_mix("intfp-osc")
    plan = osc().plan(1200)
    assert [p.start for p in plan] == [0, 400, 800]
    assert [p.length for p in plan] == [400, 400, 400]
    assert [p.segment for p in plan] == ["gcc", "swim", "gcc"]
    # a budget that is not a period multiple truncates only the last phase
    ragged = osc().plan(1000)
    assert [p.length for p in ragged] == [400, 400, 200]
    assert all(p.start % mix.period == 0 for p in ragged)


def test_static_plan_splits_budget_by_weights():
    plan = PhasedWorkload(get_mix("kernel-warmup")).plan(1000)
    # weights (1, 3) -> 250 kernel instructions, 750 gcc instructions
    assert [(p.segment, p.length) for p in plan] == [
        ("kernel:dot_product", 250), ("gcc", 750)]


def test_plan_rejects_empty_budget():
    with pytest.raises(ValueError):
        osc().plan(0)


# ---------------------------------------------------------------- composition
def _strip_index(instr):
    return replace(instr, index=0)


def test_phase_records_equal_standalone_segment_generators():
    """Composition: each phase is exactly its segment generator's output."""
    workload = osc(seed=7)
    records = list(workload.trace(1000))
    for placement in workload.plan(1000):
        standalone = SyntheticWorkload(
            get_profile(placement.segment),
            seed=workload.phase_seed(placement.index))
        expected = list(standalone.trace(placement.length))
        got = records[placement.start:placement.end]
        assert ([_strip_index(i) for i in got]
                == [_strip_index(i) for i in expected])


def test_trace_records_are_reindexed_globally():
    records = list(osc().trace(900))
    assert [instr.index for instr in records] == list(range(900))


def test_kernel_phase_tiles_the_assembled_kernel_trace():
    workload = PhasedWorkload(get_mix("kernel-warmup"), seed=1)
    records = list(workload.trace(1000))
    (kernel_phase, _) = workload.plan(1000)
    base = list(KERNELS["dot_product"].trace(workload.kernel_size))
    got = records[kernel_phase.start:kernel_phase.end]
    for offset, instr in enumerate(got):
        assert _strip_index(instr) == _strip_index(base[offset % len(base)])


def test_hotset_phases_rescale_the_working_set():
    workload = PhasedWorkload(get_mix("hotset-perl"))
    base_kb = get_profile("perl").working_set_kb
    plan = workload.plan(1500)
    assert [p.working_set_scale for p in plan] == [1.0, 4.0, 0.25]
    for placement in plan:
        segment = workload.segment_workload(placement)
        assert segment.profile.working_set_kb == max(
            1, round(base_kb * placement.working_set_scale))


def test_wrong_path_delegate_is_first_profile_phase():
    # kernel-warmup's first phase is a kernel: the delegate must come from
    # the first *profile* phase so the fetch unit always has a generator
    workload = PhasedWorkload(get_mix("kernel-warmup"))
    delegate = workload.wrong_path_source()
    assert delegate is not None
    assert delegate.profile.name == "gcc"


# ---------------------------------------------------------------- determinism
def test_trace_is_pure_per_seed():
    first = list(osc(seed=5).trace(SMALL))
    again = list(osc(seed=5).trace(SMALL))
    assert first == again
    # and repeated calls on ONE object do not advance hidden state
    workload = osc(seed=5)
    assert list(workload.trace(SMALL)) == list(workload.trace(SMALL)) == first
    assert list(osc(seed=6).trace(SMALL)) != first


def test_build_workload_memo_does_not_alias_across_keys():
    name = PHASED_PREFIX + "intfp-osc"
    base, _ = build_workload(name, SMALL, seed=1)
    hit, _ = build_workload(name, SMALL, seed=1)
    assert list(base) == list(hit)
    assert list(build_workload(name, SMALL, seed=2)[0]) != list(base)
    assert len(list(build_workload(name, SMALL + 50, seed=1)[0])) == SMALL + 50
    # the phased name never aliases its base profile's entry
    assert list(build_workload("gcc", SMALL, seed=1)[0]) != list(base)
    assert (list(build_workload(PHASED_PREFIX + "membound-osc", SMALL)[0])
            != list(base))


def test_phased_scenarios_survive_the_process_pool():
    pooled = sweep_scenarios(["gals5-phased-osc"], jobs=2,
                             num_instructions=SMALL)
    serial = [run_scenario("gals5-phased-osc", num_instructions=SMALL)]
    assert [r.to_json() for r in pooled] == [r.to_json() for r in serial]


def test_phased_results_round_trip_through_the_store(tmp_path):
    store = ResultsStore(root=tmp_path)
    fresh = run_scenario("gals5-phased-osc", num_instructions=SMALL)
    stored = run_scenario("gals5-phased-osc", num_instructions=SMALL,
                          store=store)
    loaded = run_scenario("gals5-phased-osc", num_instructions=SMALL,
                          store=store)
    assert store.hits == 1
    assert fresh.to_json() == stored.to_json() == loaded.to_json()


# ------------------------------------------------------------------- registry
def test_every_mix_is_registered_as_a_first_class_workload():
    for name in WORKLOAD_MIXES:
        assert PHASED_PREFIX + name in WORKLOADS
    assert available_mixes() == tuple(sorted(WORKLOAD_MIXES))


def test_available_workloads_is_sorted_and_stable():
    names = available_workloads()
    assert list(names) == sorted(names)
    assert names == available_workloads()
    assert PHASED_PREFIX + "intfp-osc" in names


def test_mix_validation_rejects_malformed_tables():
    with pytest.raises(ValueError, match="unknown phase kind"):
        PhasedMix(name="x", description="", kind="wavelet", segments=("gcc",))
    with pytest.raises(ValueError, match="at least one segment"):
        PhasedMix(name="x", description="", kind=PHASE_STATIC, segments=())
    with pytest.raises(ValueError, match="period must be positive"):
        PhasedMix(name="x", description="", kind=PHASE_OSCILLATING,
                  segments=("gcc",), period=0)
    with pytest.raises(ValueError, match="weights"):
        PhasedMix(name="x", description="", kind=PHASE_STATIC,
                  segments=("gcc", "swim"), weights=(1.0,))
    with pytest.raises(ValueError, match="positive"):
        PhasedMix(name="x", description="", kind=PHASE_STATIC,
                  segments=("gcc",), weights=(-1.0,))
    with pytest.raises(KeyError, match="unknown phased mix"):
        get_mix("nope")


# ------------------------------------------------------------------------ CLI
def run_cli(capsys, *argv):
    code = main(list(argv))
    captured = capsys.readouterr()
    return code, captured.out, captured.err


def test_cli_lists_workloads_sorted(capsys):
    code, out, _ = run_cli(capsys, "list", "workloads")
    assert code == 0
    lines = [line.split()[0] for line in out.splitlines()
             if line.startswith("  ")]
    assert lines == sorted(lines)
    assert PHASED_PREFIX + "intfp-osc" in lines


def test_cli_show_renders_phase_schedule(capsys):
    code, out, _ = run_cli(capsys, "show", "gals5-phased-osc")
    assert code == 0
    head, _, schedule = out.partition("\n\n")
    payload = json.loads(head)
    assert payload["workload"] == "phased:intfp-osc"
    assert "phased workload 'intfp-osc' (oscillating)" in schedule
    assert "[     0,    400)  gcc" in schedule
    assert "[   400,    800)  swim" in schedule
