"""Bit-exact golden results pinned at the pre-optimization (seed) simulator.

The fast-simulation-core rework promised *bit-identical* SimulationResult
statistics for identical seeds.  The values below were captured from the seed
tree (heapq engine, non-memoized power accounting) before any optimization
landed; the optimized simulator must keep reproducing them exactly.  If a
future change intentionally alters the model, update these constants in the
same commit and say so.
"""

from repro.core.experiments import run_single

GOLDEN = {
    ("base", "perl", 300): {
        "committed_instructions": 300,
        "elapsed_ns": 112.0,
        "ipc": 2.6785714285714284,
        "mean_slip_ns": 12.726666666666667,
        "total_energy_nj": 2313.0213617022305,
        "recoveries": 0,
        "fetched_instructions": 300,
        "domain_cycles": {"core": 113},
    },
    ("gals", "perl", 300): {
        "committed_instructions": 300,
        "elapsed_ns": 146.7579544029403,
        "ipc": 2.044182212953968,
        "mean_slip_ns": 24.146865884748625,
        "total_energy_nj": 2427.5733704643303,
        "recoveries": 0,
        "fetched_instructions": 300,
        "domain_cycles": {"decode": 147, "fetch": 146, "fp": 147,
                          "integer": 147, "memory": 147},
    },
}


def test_golden_results_bit_identical_to_seed():
    for (kind, benchmark, instructions), expected in GOLDEN.items():
        result = run_single(benchmark, kind, num_instructions=instructions,
                            seed=1)
        assert result.committed_instructions == expected["committed_instructions"]
        # exact float equality on purpose: the contract is bit-identity
        assert result.elapsed_ns == expected["elapsed_ns"]
        assert result.ipc == expected["ipc"]
        assert result.mean_slip_ns == expected["mean_slip_ns"]
        assert result.total_energy_nj == expected["total_energy_nj"]
        assert result.recoveries == expected["recoveries"]
        assert result.fetched_instructions == expected["fetched_instructions"]
        assert result.domain_cycles == expected["domain_cycles"]
