"""Unified execution configuration for scenario sweeps.

:class:`ExecutionConfig` is the single spelling of every execution knob the
sweep entry points used to take piecemeal (``store=`` vs ``cache=``,
``jobs=``, implicit pool behaviour): which :mod:`job backend
<repro.exec.backends>` runs the missing scenarios, how many workers it may
use, which results store serves hits and receives freshly computed results,
and whether workers are warm-started.  Every sweep entry point
(:func:`~repro.results.runner.run_cached`,
:func:`~repro.results.runner.resume_sweep`,
:func:`~repro.core.scenario.sweep_scenarios`,
:func:`~repro.core.experiments.run_design_space`) threads one of these
through; the old per-function spellings remain as thin deprecated aliases
merged by :func:`resolve_execution`.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, replace
from typing import TYPE_CHECKING, Any, Optional, Union

if TYPE_CHECKING:  # pragma: no cover - the import-time dependency must stay
    from ..results.store import ResultsStore  # one-way: results -> exec

#: Sentinel distinguishing "argument not passed" from an explicit ``None``
#: (``store=None`` legitimately means "no store").
UNSET: Any = object()


@dataclass(frozen=True)
class ExecutionConfig:
    """How a sweep executes: backend, parallelism, store, warm-start.

    ``backend`` names a registered job backend (``serial``, ``local``,
    ``subprocess``, ...); ``jobs`` bounds its worker count (``None`` =
    ``REPRO_JOBS`` or the CPU count); ``store`` is anything
    :func:`~repro.results.store.resolve_store` accepts (``True`` = the
    default store, a path, a :class:`~repro.results.store.ResultsStore`,
    ``None``/``False`` = uncached); ``warm_start`` pre-builds the sweep's
    workloads in every worker; ``poll_interval`` is the completion-poll
    period (seconds) for backends that poll shared state rather than wait on
    in-process futures.  ``max_retries`` bounds how often an
    *infrastructure* failure (``OSError``, a broken process pool, a torn
    job file) is retried with exponential backoff before the job is given
    up on -- deterministic simulation exceptions are never retried; they
    fail fast.  ``retry_backoff`` is the backoff base delay in seconds
    (attempt ``k`` waits ``retry_backoff * 2**k`` plus deterministic
    jitter).
    """

    backend: str = "local"
    jobs: Optional[int] = None
    store: Any = True
    warm_start: bool = True
    poll_interval: float = 0.05
    max_retries: int = 3
    retry_backoff: float = 0.05

    def __post_init__(self) -> None:
        if self.poll_interval <= 0:
            raise ValueError("poll_interval must be positive")
        if self.jobs is not None and self.jobs < 1:
            raise ValueError("jobs must be at least 1")
        if self.max_retries < 0:
            raise ValueError("max_retries must be non-negative")
        if self.retry_backoff < 0:
            raise ValueError("retry_backoff must be non-negative")

    def resolve_store(self) -> Optional["ResultsStore"]:
        """This configuration's results store (``None`` when uncached)."""
        from ..results.store import resolve_store
        return resolve_store(self.store)


def resolve_execution(execution: Union[ExecutionConfig, str, None] = None,
                      store: Any = UNSET,
                      jobs: Optional[int] = None,
                      cache: Any = UNSET,
                      default_store: Any = True) -> ExecutionConfig:
    """Merge the modern and legacy execution knobs into one config.

    ``execution`` may be a full :class:`ExecutionConfig`, a bare backend name
    (shorthand for ``ExecutionConfig(backend=name)``), or ``None`` for the
    defaults.  Explicitly passed ``store=``/``jobs=`` keywords override the
    corresponding ``execution`` fields, so callers can say
    ``resume_sweep(..., execution="subprocess", jobs=4)``.  The deprecated
    ``cache=`` spelling is accepted as an alias for ``store=`` and raises a
    :class:`DeprecationWarning`.
    """
    if isinstance(execution, str):
        execution = ExecutionConfig(backend=execution, store=default_store)
    elif execution is None:
        execution = ExecutionConfig(store=default_store)
    if cache is not UNSET:
        warnings.warn(
            "the cache= parameter is deprecated; use store= (or "
            "ExecutionConfig(store=...)) instead", DeprecationWarning,
            stacklevel=3)
        if store is UNSET:
            store = cache
    if store is not UNSET:
        execution = replace(execution, store=store)
    if jobs is not None:
        execution = replace(execution, jobs=jobs)
    return execution
