"""Figure 13: gcc with the FP clock slowed (gals-1: -50 %, gals-2: /3).

Paper result: gcc has essentially no floating-point work, so its FP domain can
run at a third of the speed with little performance cost; combined with the
10 % fetch slowdown this yields ~11 % energy and ~21 % power savings for a
~13 % performance loss, and the GALS machine beats the voltage-scaled
synchronous "ideal" at the same performance -- the paper's positive result for
application-driven multi-domain DVFS.
"""

from repro.analysis import dvfs_table
from repro.core.dvfs import GCC_GALS_2
from repro.core.experiments import selective_slowdown

from conftest import TIMED_INSTRUCTIONS

import pytest

#: figure-reproduction benchmarks are tier-2: heavy, skipped by tier-1
pytestmark = pytest.mark.slow


def test_fig13_gcc_fp_slowdown(benchmark, figure13_results):
    benchmark.pedantic(
        selective_slowdown, args=("gcc", GCC_GALS_2),
        kwargs={"num_instructions": TIMED_INSTRUCTIONS},
        rounds=1, iterations=1)

    print("\n=== Figure 13: gcc, FP clock -50% (gals-1) and /3 (gals-2), "
          "fetch -10% ===")
    print(dvfs_table(figure13_results))

    gals_1, gals_2 = figure13_results
    for result in figure13_results:
        # Modest performance loss (paper: ~13 %), clear power savings.
        assert 0.75 < result.relative_performance < 1.0
        assert result.relative_power < 0.95
        assert result.relative_energy < 1.0
    # Slowing the unused FP domain further costs almost nothing extra.
    assert abs(gals_2.relative_performance - gals_1.relative_performance) < 0.05
    print(f"\ngals-1: perf {gals_1.relative_performance:.3f}, "
          f"energy {gals_1.relative_energy:.3f}, power {gals_1.relative_power:.3f} "
          f"(paper: 0.87 / 0.89 / 0.79)")
