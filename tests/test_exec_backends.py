"""Tests for the pluggable job-backend subsystem (:mod:`repro.exec`).

Covers the backend registry, the :class:`ExecutionConfig` merge semantics
(including the deprecated ``cache=`` spelling), bit-identity of every
backend against the serial reference, the narrowed exception contract
(real worker exceptions surface; only pool-infrastructure failures fall
back), and the store-coordinated ``subprocess`` fabric end to end.
"""

from dataclasses import replace

import pytest

from repro.core.scenario import get_scenario, sweep_scenarios
from repro.exec import (JOB_BACKENDS, ExecutionConfig, JobHandle,
                        LocalPoolBackend, SerialBackend, UNSET,
                        available_job_backends, make_job_backend,
                        register_job_backend, resolve_execution)
from repro.results import ResultsStore, resume_sweep
from repro.workloads.registry import (WORKLOAD_SYNTHETIC, WORKLOADS,
                                      WorkloadEntry)

SMALL = 150

#: Six registered scenarios for the multi-worker sweep acceptance test.
SWEEP_SCENARIOS = ["base", "gals5", "frontback2", "fem3", "alu4", "memsplit2"]


@pytest.fixture
def store(tmp_path):
    return ResultsStore(root=tmp_path / "cache")


# ------------------------------------------------------------------- registry
def test_builtin_backends_are_registered():
    assert available_job_backends() == ("serial", "local", "subprocess")
    for info in JOB_BACKENDS.values():
        assert info.description


def test_register_duplicate_backend_rejected():
    with pytest.raises(ValueError, match="already registered"):
        register_job_backend("serial", SerialBackend)


def test_make_job_backend_unknown_name():
    with pytest.raises(KeyError, match="unknown job backend"):
        make_job_backend("no-such-fabric")


def test_make_job_backend_accepts_names_and_configs(store):
    assert isinstance(make_job_backend("serial"), SerialBackend)
    backend = make_job_backend(ExecutionConfig(backend="local", jobs=2), store)
    assert isinstance(backend, LocalPoolBackend)
    assert backend.store is store


def test_custom_backend_registration(monkeypatch, store):
    monkeypatch.delitem(JOB_BACKENDS, "custom", raising=False)

    class Recording(SerialBackend):
        name = "custom"

    register_job_backend("custom", Recording, "test fabric")
    try:
        runs = resume_sweep(["base"], store=store, execution="custom",
                            num_instructions=SMALL)
        assert len(runs) == 1 and not runs[0].cached
    finally:
        JOB_BACKENDS.pop("custom", None)


# ----------------------------------------------------------- config semantics
def test_execution_config_validation():
    with pytest.raises(ValueError, match="jobs"):
        ExecutionConfig(jobs=0)
    with pytest.raises(ValueError, match="poll_interval"):
        ExecutionConfig(poll_interval=0)


def test_resolve_execution_defaults_and_overrides(store):
    config = resolve_execution()
    assert config.backend == "local" and config.store is True

    config = resolve_execution("subprocess", jobs=3, store=store)
    assert config.backend == "subprocess"
    assert config.jobs == 3 and config.store is store

    # explicit keywords override the ExecutionConfig's fields
    base = ExecutionConfig(backend="serial", jobs=1, store=None)
    merged = resolve_execution(base, store=store, jobs=4)
    assert merged.backend == "serial"
    assert merged.store is store and merged.jobs == 4
    # the original config is untouched (frozen dataclass + replace)
    assert base.jobs == 1 and base.store is None


def test_resolve_execution_cache_alias_warns(store):
    with pytest.warns(DeprecationWarning, match="store="):
        config = resolve_execution(cache=store)
    assert config.store is store
    # explicit store= beats the deprecated alias
    with pytest.warns(DeprecationWarning):
        config = resolve_execution(store=None, cache=store)
    assert config.store is None
    assert UNSET is not None


# --------------------------------------------------------------- bit-identity
def test_all_backends_bit_identical_to_uncached_sweep(tmp_path):
    names = ["base", "gals5"]
    reference = sweep_scenarios(names, jobs=1, num_instructions=SMALL)
    for backend in ("serial", "local", "subprocess"):
        store = ResultsStore(root=tmp_path / backend)
        runs = resume_sweep(names, store=store, jobs=2, execution=backend,
                            num_instructions=SMALL)
        assert [run.outcome.to_json() for run in runs] \
            == [outcome.to_json() for outcome in reference], backend


def test_local_backend_pool_failure_falls_back_in_process(store, monkeypatch):
    """Pool-infrastructure failure degrades to in-process execution."""
    import repro.exec.backends as backends

    def broken_pool(*args, **kwargs):
        raise OSError("no fork for you")

    monkeypatch.setattr(backends, "ProcessPoolExecutor", broken_pool)
    runs = resume_sweep(["base", "gals5"], store=store, jobs=2,
                        num_instructions=SMALL)
    assert [run.status for run in runs] == ["computed", "computed"]
    assert store.get(replace(get_scenario("base"),
                             num_instructions=SMALL)) is not None


# --------------------------------------------------- narrowed worker failures
def _raising_factory(num_instructions, seed, kernel_size):
    raise ValueError("synthetic workload failure")


def test_real_worker_exception_surfaces_from_pool(store, monkeypatch):
    """A scenario that raises inside a pool worker propagates unchanged --
    the old blanket except swallowed it into a silent serial retry."""
    monkeypatch.setitem(WORKLOADS, "raising", WorkloadEntry(
        name="raising", kind=WORKLOAD_SYNTHETIC, description="always raises",
        factory=_raising_factory))
    bad = replace(get_scenario("base"), workload="raising",
                  num_instructions=SMALL)
    config = ExecutionConfig(backend="local", jobs=2, store=store,
                             warm_start=False)
    with pytest.raises(ValueError, match="synthetic workload failure"):
        resume_sweep([bad, "gals5"], execution=config,
                     num_instructions=SMALL)


def test_unknown_registry_name_surfaces_as_keyerror(store):
    """A name nobody can resolve is a real error, not a fallback case."""
    bad = replace(get_scenario("base"), workload="no-such-workload",
                  num_instructions=SMALL)
    config = ExecutionConfig(backend="local", jobs=2, store=store,
                             warm_start=False)
    with pytest.raises(KeyError, match="no-such-workload"):
        resume_sweep([bad], execution=config)


def test_parent_can_resolve_distinguishes_registry_misses(monkeypatch):
    from repro.exec.backends import _parent_can_resolve
    known = replace(get_scenario("base"), num_instructions=SMALL)
    assert _parent_can_resolve(known)
    assert not _parent_can_resolve(replace(known, workload="no-such"))
    monkeypatch.setitem(WORKLOADS, "runtime-only", WorkloadEntry(
        name="runtime-only", kind=WORKLOAD_SYNTHETIC, description="",
        factory=_raising_factory))
    assert _parent_can_resolve(replace(known, workload="runtime-only"))


# ----------------------------------------------------------- serial mechanics
def test_serial_backend_poll_and_cancel():
    backend = SerialBackend(ExecutionConfig(backend="serial"))
    scenarios = [replace(get_scenario("base"), num_instructions=SMALL),
                 replace(get_scenario("gals5"), num_instructions=SMALL)]
    handles = backend.submit(scenarios)
    assert [handle.index for handle in handles] == [0, 1]
    first = backend.poll()
    assert len(first) == 1 and first[0].done and first[0].outcome is not None
    backend.cancel()
    assert backend.poll() == []


def test_job_handle_complete_round_trip():
    scenario = replace(get_scenario("base"), num_instructions=SMALL)
    handle = JobHandle(index=0, scenario=scenario)
    assert not handle.done
    from repro.exec import timed_run_scenario
    outcome, seconds = timed_run_scenario(scenario)
    assert handle.complete(outcome, seconds, stored_key="abc") is handle
    assert handle.done and handle.stored_key == "abc"
    assert handle.seconds == seconds


# -------------------------------------------------------- subprocess backend
def test_subprocess_backend_requires_store():
    with pytest.raises(ValueError, match="requires a results store"):
        make_job_backend("subprocess", store=None)


def test_subprocess_sweep_two_workers_serves_all_from_shared_store(store):
    """Acceptance: a two-worker subprocess sweep of six scenarios completes
    with every result published to (and afterwards served from) the shared
    store, and leaves no queue/claim residue behind."""
    from repro.exec.worker import pending_jobs

    runs = resume_sweep(SWEEP_SCENARIOS, store=store, jobs=2,
                        execution="subprocess", num_instructions=SMALL)
    assert [run.status for run in runs] == ["computed"] * len(SWEEP_SCENARIOS)
    again = resume_sweep(SWEEP_SCENARIOS, store=store, jobs=1,
                         num_instructions=SMALL)
    assert all(run.cached for run in again)
    assert pending_jobs(store) == []
    assert not list(store.claims_dir.glob("*.claim")) \
        if store.claims_dir.is_dir() else True


def test_subprocess_parent_fallback_for_runtime_registrations(store,
                                                              monkeypatch):
    """A workload only the parent knows: workers record a failure marker and
    exit, the parent computes in-process -- the sweep still completes."""
    from repro.workloads.registry import _synthetic_factory

    monkeypatch.setitem(WORKLOADS, "runtime-perl", WorkloadEntry(
        name="runtime-perl", kind=WORKLOAD_SYNTHETIC,
        description="registered after worker launch",
        factory=_synthetic_factory("perl")))
    scenario = replace(get_scenario("base"), workload="runtime-perl",
                       num_instructions=SMALL)
    runs = resume_sweep([scenario], store=store, jobs=1,
                        execution="subprocess")
    assert len(runs) == 1 and not runs[0].cached
    assert store.get(scenario) is not None


# ------------------------------------------------------- worker queue plumbing
def test_worker_queue_round_trip(store):
    from repro.exec import worker

    scenario = replace(get_scenario("base"), num_instructions=SMALL)
    key = worker.enqueue_job(store, scenario)
    assert key == store.key_for(scenario)
    assert [path.stem for path in worker.pending_jobs(store)] == [key]
    # a worker drains the queue and publishes into the store
    processed = worker.drain(store, poll_interval=0.01, exit_when_idle=True)
    assert processed == 1
    assert worker.pending_jobs(store) == []
    assert store.get(scenario) is not None
    # draining an empty queue is a clean no-op
    assert worker.drain(store, poll_interval=0.01, exit_when_idle=True) == 0


def test_worker_records_failure_marker(store, monkeypatch):
    from repro.exec import worker

    monkeypatch.setitem(WORKLOADS, "raising", WorkloadEntry(
        name="raising", kind=WORKLOAD_SYNTHETIC, description="always raises",
        factory=_raising_factory))
    scenario = replace(get_scenario("base"), workload="raising",
                       num_instructions=SMALL)
    key = worker.enqueue_job(store, scenario)
    assert worker.run_one(store)
    assert worker.pending_jobs(store) == []
    marker = worker.error_path(store, key)
    assert marker.exists()
    assert "synthetic workload failure" in marker.read_text()
    # re-submitting the job clears the stale failure marker
    worker.enqueue_job(store, scenario)
    assert not marker.exists()


def test_worker_skips_claimed_jobs(store):
    from repro.exec import worker

    scenario = replace(get_scenario("base"), num_instructions=SMALL)
    key = worker.enqueue_job(store, scenario)
    assert store.try_claim(key, owner="someone-else")
    # the job is claimed by another worker: nothing to do this scan
    assert not worker.run_one(store)
    store.release_claim(key)
    assert worker.run_one(store)
    assert store.get(scenario) is not None
