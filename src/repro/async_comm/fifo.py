"""Mixed-clock (asynchronous) FIFO between two clock domains.

This is the behavioural model of the low-latency token-ring FIFO of Chelcea
and Nowick that the paper uses for all inter-domain communication
(Section 3.2, Figure 2).  The circuit details are abstracted away; what
matters architecturally is:

* data written by the producer becomes visible to the consumer only after the
  *empty* flag has been synchronized into the consumer's clock domain
  (``consumer_sync`` consumer cycles);
* space freed by the consumer becomes visible to the producer only after the
  *full* flag has been synchronized into the producer's clock domain
  (``producer_sync`` producer cycles);
* in the steady state (FIFO neither empty nor full) items stream through with
  high throughput -- the latency penalties appear when the FIFO drains or
  fills, exactly the behaviour the paper relies on to explain why fpppp (few
  branches, steady streams) loses the least performance.

Residency time in these FIFOs is what Figure 7 reports as the "FIFO" share of
the instruction slip.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Callable, Deque, Iterable, List, Optional, Tuple

from ..sim.channel import Channel
from ..sim.clock import Clock
from .synchronizer import Synchronizer


class MixedClockFifo(Channel):
    """Asynchronous FIFO connecting a producer domain to a consumer domain."""

    counts_as_fifo = True

    def __init__(
        self,
        name: str,
        capacity: int,
        producer_clock: Clock,
        consumer_clock: Clock,
        consumer_sync: int = 1,
        producer_sync: int = 1,
    ) -> None:
        super().__init__(name, capacity)
        self.producer_clock = producer_clock
        self.consumer_clock = consumer_clock
        self._data_sync = Synchronizer(consumer_clock, depth=consumer_sync)
        self._space_sync = Synchronizer(producer_clock, depth=producer_sync)
        # entries: (item, push_time, visible_to_consumer_at)
        self._entries: Deque[Tuple[Any, float, float]] = deque()
        # times at which freed slots become visible to the producer
        self._pending_space: Deque[float] = deque()

    # -------------------------------------------------------------- producer
    @property
    def occupancy(self) -> int:
        """Number of items physically present in the FIFO."""
        return len(self._entries)

    def apparent_occupancy(self, time: float) -> int:
        """Occupancy as seen by the producer (full flag synchronization).

        Slots freed by the consumer less than ``producer_sync`` producer cycles
        ago are not yet visible, so the FIFO may appear fuller than it is.
        """
        hidden_free = sum(1 for t in self._pending_space if t > time)
        return len(self._entries) + hidden_free

    def can_push(self, time: float) -> bool:
        return self.apparent_occupancy(time) < self.capacity

    def push(self, item: Any, time: float) -> None:
        if not self.can_push(time):
            raise OverflowError(f"push into apparently-full FIFO {self.name!r}")
        visible_at = self._data_sync.observable_at(time)
        self._entries.append((item, time, visible_at))
        self.push_count += 1

    # -------------------------------------------------------------- consumer
    def can_pop(self, time: float) -> bool:
        self._expire_space(time)
        return bool(self._entries) and self._entries[0][2] <= time

    def peek(self, time: float) -> Any:
        if not self.can_pop(time):
            raise LookupError(f"peek on (apparently) empty FIFO {self.name!r}")
        return self._entries[0][0]

    def pop(self, time: float) -> Any:
        if not self.can_pop(time):
            raise LookupError(f"pop on (apparently) empty FIFO {self.name!r}")
        item, pushed_at, _visible = self._entries.popleft()
        self.last_pop_wait = max(0.0, time - pushed_at)
        self.total_wait += self.last_pop_wait
        self.pop_count += 1
        self._pending_space.append(self._space_sync.observable_at(time))
        return item

    def _expire_space(self, time: float) -> None:
        while self._pending_space and self._pending_space[0] <= time:
            self._pending_space.popleft()

    # ----------------------------------------------------------------- misc
    def flush(self, predicate: Optional[Callable[[Any], bool]] = None) -> int:
        """Drop entries matching ``predicate`` (all of them when None).

        Flushed slots are returned to the producer immediately; a pipeline
        flush resets the FIFO control state on both sides.
        """
        if predicate is None:
            dropped = len(self._entries)
            self._entries.clear()
        else:
            kept = [e for e in self._entries if not predicate(e[0])]
            dropped = len(self._entries) - len(kept)
            self._entries = deque(kept)
        self.flush_count += dropped
        return dropped

    def items(self) -> List[Any]:
        return [item for item, _, _ in self._entries]

    @property
    def steady_state_latency(self) -> float:
        """Forward latency (ns) of one item through an otherwise-busy FIFO."""
        return self._data_sync.latency()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"MixedClockFifo(name={self.name!r}, occ={self.occupancy}/"
                f"{self.capacity}, producer={self.producer_clock.name!r}, "
                f"consumer={self.consumer_clock.name!r})")
