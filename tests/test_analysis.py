"""Tests for the clock-skew case study (Table 1) and report rendering."""

import pytest

from repro.analysis import (CLOCK_SKEW_CASES, ascii_bar, bar_chart, breakdown_table,
                            clock_skew_table, dvfs_table, energy_power_table,
                            misspeculation_table, performance_table,
                            projected_skew_fraction, skew_trend,
                            slip_breakdown_table, slip_table)
from repro.core.experiments import DvfsResult
from repro.core.metrics import ComparisonRow


def make_row(benchmark="perl"):
    return ComparisonRow(benchmark=benchmark, relative_performance=0.9,
                         relative_energy=1.01, relative_power=0.9,
                         slip_ratio=1.65, base_slip_ns=10.0, gals_slip_ns=16.5,
                         gals_fifo_slip_fraction=0.3, base_misspeculation=0.138,
                         gals_misspeculation=0.167)


# ------------------------------------------------------------------- Table 1
def test_table1_rows_match_published_data():
    by_name = {case.design: case for case in CLOCK_SKEW_CASES}
    assert by_name["Alpha 21064"].skew_ps == 200.0
    assert by_name["Alpha 21164"].cycle_time_ns == pytest.approx(3.3)
    assert by_name["Alpha 21264"].device_count_millions == pytest.approx(15.2)
    assert by_name["Itanium (with active deskewing)"].skew_ps == 28.0
    assert by_name["Itanium (without active deskewing)"].skew_ps == 110.0


def test_itanium_skew_without_deskewing_is_about_ten_percent_of_cycle():
    """Section 2.2: 110 ps of skew is almost 10% of the 1.25 ns cycle."""
    case = [c for c in CLOCK_SKEW_CASES if "without" in c.design][0]
    assert case.skew_fraction_of_cycle == pytest.approx(0.088, abs=0.01)


def test_clocking_demands_grow_across_generations():
    """The devices-per-ps-of-skew metric grows monotonically (the paper's
    'many more registers with much smaller skew budgets')."""
    values = [c.devices_per_ps_of_skew for c in CLOCK_SKEW_CASES
              if "without" not in c.design]
    assert values == sorted(values)


def test_clock_skew_table_and_trend_render():
    table = clock_skew_table()
    assert "Alpha 21264" in table and "Skew/cycle" in table
    trend = skew_trend()
    assert len(trend) == len(CLOCK_SKEW_CASES)


def test_projected_skew_grows_for_smaller_technologies():
    finer = projected_skew_fraction(0.09)
    coarser = projected_skew_fraction(0.35)
    assert finer > coarser
    with pytest.raises(ValueError):
        projected_skew_fraction(0.0)


# -------------------------------------------------------------------- reports
def test_ascii_bar_and_chart():
    assert ascii_bar(0.0) == ""
    assert len(ascii_bar(1.2, scale=50, maximum=1.2)) == 50
    chart = bar_chart({"perl": 0.9, "gcc": 0.75}, title="Figure 5")
    assert "Figure 5" in chart and "perl" in chart
    with pytest.raises(ValueError):
        ascii_bar(0.5, maximum=0.0)


def test_comparison_tables_render_all_benchmarks():
    rows = [make_row("perl"), make_row("gcc")]
    for renderer in (performance_table, slip_table, slip_breakdown_table,
                     misspeculation_table, energy_power_table):
        text = renderer(rows)
        assert "perl" in text and "gcc" in text
    assert "average" in performance_table(rows)


def test_breakdown_table_uses_figure10_categories(perl_pair):
    text = breakdown_table(perl_pair.base_result.energy,
                           perl_pair.gals_result.energy)
    assert "Global clock" in text
    assert "Issue windows" in text
    assert "total" in text


def test_dvfs_table_renders_ideal_column():
    results = [DvfsResult(benchmark="gcc", policy="gals-1",
                          relative_performance=0.87, relative_energy=0.89,
                          relative_power=0.79, ideal_energy=0.75)]
    text = dvfs_table(results)
    assert "gcc/gals-1" in text and "ideal" in text
    no_ideal = dvfs_table(results, include_ideal=False)
    assert "ideal" not in no_ideal


# -------------------------------------------------- design-space compare table
def _design_space_cell(topology, elapsed_ns, energy_nj, workload="perl",
                       policy=None):
    """Minimal ScenarioResult-shaped object for the design-space renderers."""
    from types import SimpleNamespace
    scenario = SimpleNamespace(name=f"{topology}/{workload}/{policy or 'uniform'}",
                               topology=topology, workload=workload,
                               policy=policy)
    result = SimpleNamespace(committed_instructions=1000, ipc=2.0,
                             elapsed_ns=elapsed_ns,
                             total_energy_nj=energy_nj,
                             average_power_w=energy_nj / elapsed_ns)
    return SimpleNamespace(scenario=scenario, result=result)


def test_design_space_records_normalise_against_base_topology():
    from repro.analysis import design_space_records
    cells = [_design_space_cell("gals5", elapsed_ns=200.0, energy_nj=110.0),
             _design_space_cell("base", elapsed_ns=100.0, energy_nj=100.0)]
    records = design_space_records(cells)
    by_topology = {record["topology"]: record for record in records}
    base, gals = by_topology["base"], by_topology["gals5"]
    # base is the reference even though it is not the first row
    assert base["rel_performance"] == base["rel_energy"] == 1.0
    assert gals["rel_performance"] == pytest.approx(0.5)
    assert gals["rel_energy"] == pytest.approx(1.1)
    # ED = E*D, ED2 = E*D^2; relative values follow
    assert gals["edp_nj_ns"] == pytest.approx(110.0 * 200.0)
    assert gals["rel_edp"] == pytest.approx((110 * 200) / (100 * 100))
    assert gals["rel_ed2p"] == pytest.approx((110 * 200 ** 2) / (100 * 100 ** 2))


def test_design_space_records_group_per_workload_and_policy():
    from repro.analysis import design_space_records
    cells = [_design_space_cell("base", 100.0, 100.0, workload="perl"),
             _design_space_cell("gals5", 200.0, 110.0, workload="perl"),
             _design_space_cell("gals5", 400.0, 120.0, workload="gcc")]
    records = design_space_records(cells)
    # the gcc cell has no base row: it is its own reference
    gcc = [r for r in records if r["workload"] == "gcc"][0]
    assert gcc["rel_performance"] == 1.0 and gcc["rel_edp"] == 1.0
    perl_gals = [r for r in records
                 if r["workload"] == "perl" and r["topology"] == "gals5"][0]
    assert perl_gals["rel_performance"] == pytest.approx(0.5)


def test_design_space_table_renders_all_cells():
    from repro.analysis import design_space_table
    cells = [_design_space_cell("base", 100.0, 100.0),
             _design_space_cell("gals5", 200.0, 110.0),
             _design_space_cell("fem3", 150.0, 105.0, policy="generic")]
    text = design_space_table(cells)
    assert "rel ED2" in text and "topology" in text
    for topology in ("base", "gals5", "fem3"):
        assert topology in text
    assert "generic" in text
