"""Unit tests for benchmark profiles, synthetic workloads and kernels."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.isa.instructions import InstructionClass
from repro.workloads import (DEFAULT_BENCHMARKS, KERNELS, PROFILES, get_kernel,
                             get_profile, kernel_trace, make_trace, make_workload,
                             profiles_in_suite)
from repro.workloads.profiles import BenchmarkProfile


# ------------------------------------------------------------------- profiles
def test_all_profiles_are_internally_consistent():
    for profile in PROFILES.values():
        assert 0 <= profile.int_alu_fraction <= 1
        assert profile.mean_block_length >= 2
        assert profile.working_set_kb > 0


def test_default_benchmarks_exist():
    for name in DEFAULT_BENCHMARKS:
        assert name in PROFILES


def test_paper_specific_facts_encoded():
    fpppp = get_profile("fpppp")
    # ~1 branch per 67 instructions
    assert 1 / 80 <= fpppp.branches_per_instruction <= 1 / 50
    perl = get_profile("perl")
    assert perl.fp_fraction == 0.0
    assert 1 / 7 <= perl.branches_per_instruction <= 1 / 4
    ijpeg = get_profile("ijpeg")
    gcc = get_profile("gcc")
    assert (ijpeg.load_fraction + ijpeg.store_fraction
            < perl.load_fraction + perl.store_fraction)
    assert gcc.static_blocks > perl.static_blocks  # large code footprint


def test_profile_validation_rejects_bad_mixes():
    with pytest.raises(ValueError):
        BenchmarkProfile(name="bad", suite="x", description="",
                         branch_fraction=0.5, jump_fraction=0.0,
                         strongly_biased_fraction=0.5, strong_bias=0.9,
                         weak_bias=0.6, fp_fraction=0.4, fp_mul_share=0.0,
                         fp_div_share=0.0, load_fraction=0.4, store_fraction=0.1,
                         int_mul_share=0.0, dependence_distance=2.0,
                         working_set_kb=10, access_stride=8, static_blocks=10)


def test_get_profile_unknown_name():
    with pytest.raises(KeyError):
        get_profile("spec2049")


def test_profiles_in_suite_partitions():
    names = set()
    for suite in ("specint95", "specfp95", "mediabench"):
        for profile in profiles_in_suite(suite):
            names.add(profile.name)
    assert names == set(PROFILES)


# ---------------------------------------------------------- synthetic workloads
def test_trace_is_deterministic_for_same_seed():
    a = make_trace("perl", 500, seed=3)
    b = make_trace("perl", 500, seed=3)
    assert [(i.pc, i.opclass, i.taken) for i in a] == \
           [(i.pc, i.opclass, i.taken) for i in b]


def test_trace_differs_across_seeds():
    a = make_trace("perl", 500, seed=1)
    b = make_trace("perl", 500, seed=2)
    assert [(i.pc, i.taken) for i in a] != [(i.pc, i.taken) for i in b]


def test_trace_length_and_indices():
    trace = make_trace("gcc", 750, seed=1)
    assert len(trace) == 750
    assert [i.index for i in trace] == list(range(750))


def test_trace_mix_roughly_matches_profile():
    profile = get_profile("perl")
    trace = make_trace("perl", 6000, seed=1)
    instructions = list(trace)
    branch_share = sum(i.is_branch for i in instructions) / len(instructions)
    load_share = sum(i.is_load for i in instructions) / len(instructions)
    fp_share = sum(i.opclass.is_fp for i in instructions) / len(instructions)
    assert branch_share == pytest.approx(profile.branch_fraction, abs=0.05)
    assert load_share == pytest.approx(profile.load_fraction, abs=0.08)
    assert fp_share == pytest.approx(0.0, abs=0.01)


def test_fpppp_branch_density_is_very_low():
    trace = make_trace("fpppp", 6000, seed=1)
    instructions = list(trace)
    control = sum(i.is_control for i in instructions) / len(instructions)
    assert control < 0.03


def test_memory_instructions_have_addresses_and_branches_have_targets():
    trace = make_trace("li", 2000, seed=1)
    for instr in trace:
        if instr.opclass.is_memory:
            assert instr.mem_address is not None and instr.mem_address > 0
        if instr.is_control:
            assert instr.target_pc is not None


def test_branch_outcomes_follow_static_bias():
    """The same static branch pc must not be purely random: the predictor
    relies on per-pc bias."""
    trace = make_trace("ijpeg", 8000, seed=1)
    outcomes = {}
    for instr in trace:
        if instr.is_branch:
            outcomes.setdefault(instr.pc, []).append(instr.taken)
    biased = 0
    measured = 0
    for pc, taken_list in outcomes.items():
        if len(taken_list) >= 20:
            measured += 1
            rate = sum(taken_list) / len(taken_list)
            if rate <= 0.35 or rate >= 0.65:
                biased += 1
    assert measured > 0
    assert biased / measured > 0.5


def test_wrong_path_generator_is_deterministic_and_plausible():
    workload = make_workload("perl", seed=1)
    a = workload.wrong_path_instruction(0x400100, 3)
    b = workload.wrong_path_instruction(0x400100, 3)
    assert (a.pc, a.opclass, a.dest) == (b.pc, b.opclass, b.dest)
    assert a.opclass in (InstructionClass.INT_ALU, InstructionClass.LOAD)
    assert a.index == -1


def test_workload_static_program_properties():
    workload = make_workload("gcc", seed=1)
    assert len(workload.blocks) == get_profile("gcc").static_blocks
    assert workload.static_instruction_count > 0


def test_trace_requires_positive_length():
    with pytest.raises(ValueError):
        make_workload("perl").trace(0)


# -------------------------------------------------------------------- kernels
def test_all_kernels_produce_traces():
    for name in KERNELS:
        trace = kernel_trace(name, 8)
        assert len(trace) > 0


def test_vector_sum_kernel_semantics():
    kernel = get_kernel("vector_sum")
    program, memory = kernel.build(16)
    from repro.isa.executor import FunctionalExecutor
    executor = FunctionalExecutor(program)
    executor.preload_memory(memory)
    executor.run()
    expected = sum(memory.values())
    assert executor.state.read_reg(1) == expected


def test_matmul_kernel_computes_correct_product():
    kernel = get_kernel("matmul")
    program, memory = kernel.build(3)
    from repro.isa.executor import FunctionalExecutor
    from repro.workloads.kernels import ARRAY_A, ARRAY_B, ARRAY_C, WORD
    executor = FunctionalExecutor(program, max_instructions=200_000)
    executor.preload_memory(memory)
    executor.run()
    n = 3
    for i in range(n):
        for j in range(n):
            expected = sum(memory[ARRAY_A + (i * n + k) * WORD]
                           * memory[ARRAY_B + (k * n + j) * WORD]
                           for k in range(n))
            actual = executor.state.read_mem(ARRAY_C + (i * n + j) * WORD)
            assert actual == pytest.approx(expected)


def test_kernel_lookup_errors():
    with pytest.raises(KeyError):
        get_kernel("fourier")


@settings(max_examples=15, deadline=None)
@given(st.sampled_from(sorted(PROFILES)), st.integers(min_value=50, max_value=400))
def test_property_any_profile_generates_valid_traces(name, length):
    trace = make_trace(name, length, seed=7)
    assert len(trace) == length
    for instr in trace:
        assert instr.pc >= 0x400000
        if instr.dest is not None:
            assert 0 <= instr.dest < 64
