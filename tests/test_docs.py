"""Documentation gates: generated CLI reference, docs site wiring, and the
docstring-coverage floor.

These run in tier-1 so documentation drift fails fast locally, before the CI
docs job (which additionally runs ``mkdocs build --strict``).
"""

import importlib.util
import re
import subprocess
import sys
from pathlib import Path

import pytest

from repro.cli import build_parser

REPO_ROOT = Path(__file__).resolve().parent.parent
DOCS = REPO_ROOT / "docs"
TOOLS = REPO_ROOT / "tools"


def _load_gen_cli_docs():
    """Import tools/gen_cli_docs.py (tools/ is not a package)."""
    spec = importlib.util.spec_from_file_location(
        "gen_cli_docs", TOOLS / "gen_cli_docs.py")
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def _subcommands():
    """Every 'repro ...' command path, via the generator's own walker.

    Reusing ``iter_subparsers`` keeps this test and the generated page
    covering exactly the same parser traversal.
    """
    generator = _load_gen_cli_docs()
    return [path for path, _ in generator.iter_subparsers(build_parser())]


# ------------------------------------------------------------- CLI reference
def test_every_subcommand_is_documented():
    """Adding a subcommand without regenerating docs/cli.md must fail."""
    content = (DOCS / "cli.md").read_text()
    commands = _subcommands()
    assert commands, "parser defines no subcommands?"
    for command in commands:
        assert f"## repro {command}\n" in content, (
            f"subcommand {command!r} missing from docs/cli.md; "
            "run: python tools/gen_cli_docs.py")


@pytest.mark.skipif(sys.version_info < (3, 10),
                    reason="argparse help layout differs before 3.10")
def test_cli_reference_matches_parser_exactly():
    """docs/cli.md is byte-identical to a fresh generation."""
    result = subprocess.run(
        [sys.executable, str(TOOLS / "gen_cli_docs.py"), "--check"],
        cwd=REPO_ROOT, capture_output=True, text=True)
    assert result.returncode == 0, result.stderr or result.stdout


def test_cli_reference_covers_new_controller_flags():
    content = (DOCS / "cli.md").read_text()
    for flag in ("--controller", "--controller-arg", "--controller-epoch",
                 "--controllers", "--cache-dir"):
        assert flag in content


# ---------------------------------------------------------------- docs site
def test_mkdocs_nav_and_docs_directory_agree():
    """Every nav entry exists on disk and every page is reachable."""
    nav_pages = set(re.findall(r":\s*([\w-]+\.md)\s*$",
                               (REPO_ROOT / "mkdocs.yml").read_text(),
                               re.MULTILINE))
    disk_pages = {path.name for path in DOCS.glob("*.md")}
    assert nav_pages, "mkdocs.yml nav defines no pages?"
    missing = nav_pages - disk_pages
    assert not missing, f"nav references missing pages: {sorted(missing)}"
    orphans = disk_pages - nav_pages
    assert not orphans, f"docs pages missing from the nav: {sorted(orphans)}"


def test_docs_internal_links_resolve():
    """Relative .md links between docs pages point at real files."""
    for page in DOCS.glob("*.md"):
        for target in re.findall(r"\]\((?!https?://|#)([^)#]+\.md)", page.read_text()):
            assert (DOCS / target).exists(), (
                f"{page.name} links to missing page {target!r}")


def test_docs_cover_the_cache_key_contract():
    """The results-store contract is user-facing docs, not just ROADMAP."""
    content = (DOCS / "caching.md").read_text()
    for needle in ("REPRO_CACHE_DIR", "code fingerprint",
                   "repro cache ls", "gc", "clear", "name", "description"):
        assert needle in content


def test_mkdocs_strict_build():
    """`mkdocs build --strict` passes (skipped where mkdocs is absent)."""
    pytest.importorskip("mkdocs")
    result = subprocess.run(
        [sys.executable, "-m", "mkdocs", "build", "--strict",
         "--site-dir", str(REPO_ROOT / "site-test")],
        cwd=REPO_ROOT, capture_output=True, text=True)
    try:
        assert result.returncode == 0, result.stderr or result.stdout
    finally:
        import shutil
        shutil.rmtree(REPO_ROOT / "site-test", ignore_errors=True)


# ------------------------------------------------------- docstring coverage
def test_docstring_coverage_floor():
    """src/repro/ stays above the documented docstring-coverage floor."""
    result = subprocess.run(
        [sys.executable, str(TOOLS / "docstring_coverage.py"),
         "--fail-under", "95"],
        cwd=REPO_ROOT, capture_output=True, text=True)
    assert result.returncode == 0, result.stdout + result.stderr
