"""Tests for the Topology abstraction, its registry and the generic builder."""

import pytest

from repro.core.domains import (BLOCK_LINKS, BLOCKS, DOMAIN_DECODE,
                                DOMAIN_FETCH, DOMAIN_FP, DOMAIN_INTEGER,
                                DOMAIN_MEMORY, GALS_DOMAINS, SYNC_DOMAIN,
                                Topology, available_topologies, get_topology,
                                register_topology, uniform_plan)
from repro.core.experiments import run_single
from repro.core.processor import build_processor
from repro.workloads import make_workload

SMALL = 250


# ------------------------------------------------------------------ structure
def test_canonical_topologies_registered():
    names = available_topologies()
    assert "base" in names and "gals5" in names
    # at least three non-paper topologies, as the design-space opener promises
    extras = [n for n in names if n not in ("base", "gals5")]
    assert len(extras) >= 3


def test_aliases_resolve():
    assert get_topology("gals") is get_topology("gals5")
    assert get_topology("sync") is get_topology("base")


def test_base_topology_is_degenerate_single_domain():
    base = get_topology("base")
    assert base.is_synchronous
    assert base.domain_names == (SYNC_DOMAIN,)
    assert base.edges() == ()
    assert base.blocks_in(SYNC_DOMAIN) == BLOCKS


def test_gals5_topology_is_identity_partition():
    gals = get_topology("gals5")
    assert gals.domain_names == GALS_DOMAINS
    assert not gals.is_synchronous
    # every structural link crosses a domain boundary in the 5-domain machine
    assert len(gals.edges()) == len(BLOCK_LINKS)
    for block in BLOCKS:
        assert gals.domain_of(block) == block


def test_partition_edges_follow_assignment():
    topo = get_topology("frontback2")
    edge_names = {name for name, _, _ in topo.edges()}
    # fetch->decode stays inside the front domain; dispatch and redirect cross
    assert "fetch->decode" not in edge_names
    assert {"dispatch->int", "dispatch->fp", "dispatch->mem",
            "redirect"} == edge_names


def test_topology_validation():
    with pytest.raises(ValueError):
        Topology("bad", "missing blocks", {DOMAIN_FETCH: "a"})
    with pytest.raises(ValueError):
        Topology("bad", "unknown block",
                 {**{b: "a" for b in BLOCKS}, "rogue": "a"})
    with pytest.raises(ValueError):
        Topology("bad", "empty domain name", {b: "" for b in BLOCKS})


def test_register_rejects_duplicates():
    with pytest.raises(ValueError):
        register_topology(Topology("gals5", "dup",
                                   {b: b for b in BLOCKS}))
    with pytest.raises(KeyError):
        get_topology("never-registered")


def test_register_with_conflicting_alias_leaves_registry_untouched():
    """A rejected registration must not leave a half-registered topology."""
    fresh = Topology("atomic-check", "alias conflict fixture",
                     {b: "one" for b in BLOCKS})
    with pytest.raises(ValueError):
        register_topology(fresh, aliases=("gals",))   # 'gals' is taken
    with pytest.raises(KeyError):
        get_topology("atomic-check")
    # and the corrected retry succeeds
    register_topology(fresh, aliases=("atomic-check-alias",))
    assert get_topology("atomic-check-alias") is fresh


# ------------------------------------------------------------------ execution
@pytest.mark.parametrize("name", ["frontback2", "fem3", "alu4", "memsplit2"])
def test_new_topologies_run_to_completion(name):
    result = run_single("perl", name, num_instructions=SMALL, seed=1)
    topo = get_topology(name)
    assert result.committed_instructions == SMALL
    assert result.processor == topo.kind
    assert set(result.domain_cycles) == set(topo.domain_names)
    assert result.ipc > 0
    assert result.total_energy_nj > 0


def test_coarser_partitions_lose_less_performance_than_gals5():
    """Fewer domain crossings on the critical path -> smaller slowdown."""
    base = run_single("perl", "base", num_instructions=SMALL, seed=1)
    gals5 = run_single("perl", "gals5", num_instructions=SMALL, seed=1)
    front = run_single("perl", "frontback2", num_instructions=SMALL, seed=1)
    assert base.elapsed_ns <= front.elapsed_ns <= gals5.elapsed_ns


def test_adhoc_single_domain_topology_matches_base_bit_for_bit():
    """Any all-in-one assignment degenerates to the synchronous machine."""
    adhoc = Topology("adhoc-sync", "unregistered single-domain topology",
                     {block: SYNC_DOMAIN for block in BLOCKS},
                     random_phases=False, kind="base")
    workload = make_workload("perl", seed=1)
    machine = build_processor(workload.trace(SMALL), topology=adhoc,
                              workload=workload)
    result = machine.run()
    reference = run_single("perl", "base", num_instructions=SMALL, seed=1)
    assert result.elapsed_ns == reference.elapsed_ns
    assert result.ipc == reference.ipc
    assert result.total_energy_nj == reference.total_energy_nj


def test_unknown_processor_kind_still_raises_value_error():
    with pytest.raises(ValueError):
        run_single("perl", "warp-drive", num_instructions=10)


def test_synchronous_topology_has_no_fifo_machinery():
    workload = make_workload("perl", seed=1)
    machine = build_processor(workload.trace(10), topology="base",
                              workload=workload)
    assert not any(ch.counts_as_fifo for ch in machine.all_channels)
    assert machine.kind == "base"
    assert not machine.gals


def test_multi_domain_topology_builds_fifos_on_edges_only():
    workload = make_workload("perl", seed=1)
    machine = build_processor(workload.trace(10), topology="fem3",
                              workload=workload)
    topo = get_topology("fem3")
    edge_names = {name for name, _, _ in topo.edges()}
    for link_name, channel in machine.channels.items():
        assert channel.counts_as_fifo == (link_name in edge_names)


def _fifo_power_ports(machine):
    for blocks in machine.power._blocks_by_domain.values():
        for model in blocks:
            if model.name == "fifo":
                return model.ports
    return None


def test_fifo_power_model_scales_with_crossing_count():
    """A topology with fewer mixed-clock FIFOs pays for fewer FIFO ports."""
    workload = make_workload("perl", seed=1)
    ports = {}
    for name in ("gals5", "memsplit2", "frontback2"):
        machine = build_processor(workload.trace(10), topology=name,
                                  workload=workload)
        ports[name] = _fifo_power_ports(machine)
    # gals5 keeps the stock full-complex model (all 5 links are FIFOs)
    full = ports["gals5"]
    assert full is not None
    assert ports["memsplit2"] == max(1, round(full * 1 / len(BLOCK_LINKS)))
    assert ports["frontback2"] == max(1, round(full * 4 / len(BLOCK_LINKS)))
