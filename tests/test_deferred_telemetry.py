"""Flush-point correctness of the deferred telemetry accounting engine.

The accountant and the occupancy samplers buffer run-length-encoded work and
replay it only at observation points.  The load-bearing contract: *when* the
flushes happen must never change *what* they produce.  These tests interleave
``total_energy()`` reads, full-telemetry flushes, controller epochs and
mid-run ``retime_domain`` calls at arbitrary times and require the final
``EnergyBreakdown`` (and every occupancy statistic) to be bit-equal to an
undisturbed run, including a mid-epoch retime immediately followed by a
flush.
"""

import random
from dataclasses import asdict

import pytest

from repro.core.processor import build_gals_processor
from repro.core.scenario import run_scenario
from repro.power.accounting import PowerAccountant
from repro.power.activity import ActivityCounters
from repro.power.blocks import BlockEnergyModel
from repro.sim.clock import Clock, ClockDomain
from repro.sim.engine import SimulationEngine
from repro.workloads.registry import build_workload

SMALL = 400


def _run(flush_times=(), retimes=(), retime_flush=False, instructions=SMALL):
    """One GALS run with optional scripted observations and retimes.

    ``flush_times`` schedules full-telemetry reads (energy + occupancy) at
    the given absolute times; ``retimes`` schedules ``retime_domain`` calls
    as ``(time, domain, slowdown)``; ``retime_flush`` additionally reads the
    total energy immediately after each retime (the mid-epoch
    retime-then-flush case).
    """
    trace, workload = build_workload("perl", instructions, seed=1)
    machine = build_gals_processor(trace, workload=workload)

    def observe(_):
        machine.power.total_energy()
        machine.flush_telemetry()

    for at in flush_times:
        machine.engine.schedule(at, observe, priority=7, name="observe")

    def make_retime(domain, slowdown):
        def do_retime(_):
            machine.retime_domain(domain,
                                  machine.plan.base_period * slowdown)
            if retime_flush:
                machine.power.total_energy()
        return do_retime

    for at, domain, slowdown in retimes:
        machine.engine.schedule(at, make_retime(domain, slowdown),
                                priority=8, name="retime")
    return machine.run()


def _comparable(result):
    record = asdict(result)
    record.pop("dvfs_trace")
    return record


def test_interleaved_flushes_never_change_the_result():
    plain = _run()
    rng = random.Random(7)
    noisy = _run(flush_times=sorted(rng.uniform(1.0, 150.0)
                                    for _ in range(25)))
    assert _comparable(noisy) == _comparable(plain)


def test_flush_is_idempotent_and_total_energy_is_monotone_nondecreasing():
    trace, workload = build_workload("perl", SMALL, seed=1)
    machine = build_gals_processor(trace, workload=workload)
    seen = []

    def observe(_):
        first = machine.power.total_energy()
        second = machine.power.total_energy()   # immediate re-read
        assert first == second
        seen.append(first)

    machine.engine.schedule_periodic(5.0, 20.0, observe, priority=7,
                                     name="observe")
    machine.run()
    assert seen == sorted(seen)
    assert seen[-1] > 0.0


def test_mid_run_retime_with_and_without_immediate_flush_bit_equal():
    retimes = ((40.7, "fp", 1.5), (90.3, "integer", 1.2))
    unflushed = _run(retimes=retimes)
    flushed = _run(retimes=retimes, retime_flush=True)
    assert _comparable(flushed) == _comparable(unflushed)
    # the retime visibly slowed the fp clock, so the runs are not trivial
    assert unflushed.domain_cycles["fp"] < unflushed.domain_cycles["decode"]


def test_retimes_with_interleaved_observation_storm_bit_equal():
    rng = random.Random(13)
    retimes = ((33.3, "fp", 1.4), (77.7, "fetch", 1.1), (120.1, "fp", 1.0))
    plain = _run(retimes=retimes)
    noisy = _run(retimes=retimes, retime_flush=True,
                 flush_times=sorted(rng.uniform(1.0, 140.0)
                                    for _ in range(30)))
    assert _comparable(noisy) == _comparable(plain)


def test_retime_and_flush_storm_is_wakeup_scheme_invariant():
    """The flush-point invariance contract extends to the wakeup state: a
    retime landing between a producer's writeback and the consumer's issue
    pass (with telemetry reads racing both) must leave the event scheme's
    waiter/ready-list bookkeeping producing the exact result of the legacy
    scan -- cached visibility prices go stale identically in both."""
    from repro.core.config import DEFAULT_CONFIG
    from repro.core.processor import Processor

    def run(scheme):
        trace, workload = build_workload("perl", SMALL, seed=1)
        machine = Processor(
            trace, workload=workload, topology="gals5",
            config=DEFAULT_CONFIG.with_changes(wakeup_scheme=scheme))
        machine.engine.schedule_periodic(
            4.1, 13.7, lambda _: (machine.power.total_energy(),
                                  machine.flush_telemetry()),
            priority=9, name="observe")

        def make_retime(domain, slowdown):
            return lambda _: machine.retime_domain(
                domain, machine.plan.base_period * slowdown)

        for at, domain, slowdown in ((31.9, "fp", 1.4),
                                     (58.3, "integer", 1.2),
                                     (95.7, "fp", 1.0)):
            machine.engine.schedule(at, make_retime(domain, slowdown),
                                    priority=8, name="retime")
        result = machine.run()
        assert result.recoveries > 0           # branch squashes exercised
        return result

    assert _comparable(run("event")) == _comparable(run("scan"))


def test_controller_epochs_with_extra_reads_leave_trace_and_result_unchanged():
    plain = run_scenario("gals5-perl-occupancy", num_instructions=SMALL)
    # identical scenario, but the driver's epochs race extra observations
    trace, workload = build_workload("perl", SMALL, seed=1)
    from repro.core.controllers import make_controller
    from repro.core.processor import Processor
    from repro.core.scenario import get_scenario

    scenario = get_scenario("gals5-perl-occupancy")
    machine = Processor(
        trace, workload=workload,
        topology=scenario.topology,
        plan=scenario.build_plan(),
        controller=make_controller(scenario.controller,
                                   scenario.controller_args),
        controller_epoch=scenario.controller_epoch,
    )
    machine.engine.schedule_periodic(
        3.3, 11.7, lambda _: (machine.power.total_energy(),
                              machine.flush_telemetry()),
        priority=9, name="observe")
    noisy = machine.run()
    assert noisy.dvfs_trace == plain.result.dvfs_trace
    assert noisy.energy.by_block == plain.result.energy.by_block
    assert noisy.mean_iq_occupancy == plain.result.mean_iq_occupancy


def test_occupancy_counters_flush_on_read_matches_domain_cycles():
    trace, workload = build_workload("perl", SMALL, seed=1)
    machine = build_gals_processor(trace, workload=workload)
    result = machine.run()
    # every cluster samples its window once per domain cycle; the deferred
    # run-length counters must reconstruct the exact sample count
    for name, unit in machine.exec_units.items():
        domain = machine.domains[machine.topology.domain_of(
            {"int": "integer", "fp": "fp", "mem": "memory"}[name])]
        assert unit.issue_queue.occupancy_samples == domain.cycle
    assert result.mean_iq_occupancy["fp"] == pytest.approx(
        machine.exec_units["fp"].issue_queue.mean_occupancy)


def test_block_registered_into_running_domain_charges_idle_energy():
    engine = SimulationEngine()
    domain = ClockDomain(Clock("core", period=1.0), voltage=1.5)
    accountant = PowerAccountant(ActivityCounters())
    accountant.register_block(BlockEnergyModel("a", access_energy=1.0), domain)
    domain.bind(engine)
    engine.run(until=4.5)                      # edges 0..4: voltage run open
    late = BlockEnergyModel("b", access_energy=2.0)
    accountant.register_block(late, domain)    # joins mid-run
    engine.run(until=9.5)                      # edges 5..9 with b present
    idle_b = late.cycle_energy(0, 1.5, accountant.tech)
    assert accountant.energy_by_block["b"] == pytest.approx(5 * idle_b)
    assert accountant.energy_by_block["b"] > 0.0


def test_power_probe_cannot_attach_to_a_bound_fused_domain():
    from repro.sim.event import SimulationError

    engine = SimulationEngine()
    domain = ClockDomain(Clock("core", period=1.0))

    class Component:
        def clock_edge(self, cycle, time):
            """No-op component."""

    domain.add_component(Component())          # single fused callback
    domain.bind(engine)
    accountant = PowerAccountant(ActivityCounters())
    with pytest.raises(SimulationError, match="before bind"):
        accountant.register_block(BlockEnergyModel("a", access_energy=1.0),
                                  domain)


def test_accountant_energy_by_block_view_flushes_and_matches_manual_model():
    engine = SimulationEngine()
    domain = ClockDomain(Clock("core", period=1.0), voltage=1.5)
    activity = ActivityCounters()
    accountant = PowerAccountant(activity)
    block = BlockEnergyModel("alu", access_energy=1.0, ports=1)
    accountant.register_block(block, domain)
    accountant.register_block(
        BlockEnergyModel("grid", access_energy=0.25, gated=False), domain)

    class Worker:
        def clock_edge(self, cycle, time):
            if cycle % 2 == 0:
                activity.record("alu", 1)

    domain.add_component(Worker())
    domain.bind(engine)
    tech = accountant.tech
    active_e = block.cycle_energy(1, 1.5, tech)
    idle_e = block.cycle_energy(0, 1.5, tech)
    grid_e = accountant._records["core"][2][0][0].cycle_energy(0, 1.5, tech)

    expected_alu = 0.0
    expected_grid = 0.0
    edges = 0
    for stop in (2.5, 3.5, 7.5):      # observation points at odd moments
        engine.run(until=stop)
        new_edges = domain.cycle
        for cycle in range(edges, new_edges):
            expected_alu += active_e if cycle % 2 == 0 else idle_e
            expected_grid += grid_e
        edges = new_edges
        view = accountant.energy_by_block          # flush-on-read property
        assert view["alu"] == expected_alu
        assert view["grid"] == expected_grid
    assert accountant.total_energy() == expected_alu + expected_grid
