"""Event-driven simulation engine (paper Section 4.2).

Public surface:

* :class:`~repro.sim.engine.SimulationEngine` -- the event queue + global timer.
* :class:`~repro.sim.event.Event` -- one queue node (callback, param, time,
  priority, optional period for clocked systems).
* :class:`~repro.sim.clock.Clock` / :class:`~repro.sim.clock.ClockDomain` --
  periodic events modelling local clocks and the synchronous blocks they drive.
* :class:`~repro.sim.channel.SyncQueue` -- same-domain pipeline buffer.
"""

from .channel import Channel, SyncQueue
from .clock import Clock, ClockDomain
from .engine import SimulationEngine
from .event import Event, SimulationError

__all__ = [
    "Channel",
    "Clock",
    "ClockDomain",
    "Event",
    "SimulationEngine",
    "SimulationError",
    "SyncQueue",
]
