"""Figure 7: relative slip -- share spent in FIFOs vs in the pipeline.

Paper result: part of the GALS slip increase is time physically spent inside
the mixed-clock FIFOs, but a further part comes from the latency of forwarding
results between queues; the FIFO share is therefore a visible but minority
fraction of the total slip.
"""

from repro.analysis import slip_breakdown_table
from repro.core.experiments import run_pair

from conftest import TIMED_INSTRUCTIONS

import pytest

#: figure-reproduction benchmarks are tier-2: heavy, skipped by tier-1
pytestmark = pytest.mark.slow


def test_fig07_slip_breakdown(benchmark, suite_rows):
    benchmark.pedantic(
        run_pair, args=("ijpeg",), kwargs={"num_instructions": TIMED_INSTRUCTIONS},
        rounds=1, iterations=1)

    print("\n=== Figure 7: share of GALS slip spent in FIFOs vs pipeline ===")
    print(slip_breakdown_table(suite_rows))

    shares = [row.gals_fifo_slip_fraction for row in suite_rows]
    # every benchmark spends a non-trivial but minority share of its slip in
    # the mixed-clock FIFOs
    assert all(0.02 < share < 0.75 for share in shares)
    mean_share = sum(shares) / len(shares)
    print(f"\nmean FIFO share of slip: {mean_share:.1%}")
    assert 0.10 < mean_share < 0.60
