"""Out-of-order issue queues (instruction windows).

The processor has three issue queues (Table 3): integer (20 entries), floating
point (16) and memory (16).  Each queue holds renamed instructions until their
source operands are ready *and visible in the queue's clock domain*, then
issues the oldest ready instructions to the functional units, up to the issue
width and functional-unit availability.

Queue occupancy is one of the statistics the paper highlights (occupancies go
up in the GALS machine because instructions wait longer for cross-domain
operands); :meth:`IssueQueue.sample_occupancy` feeds those numbers.
"""

from __future__ import annotations

from typing import Callable, Iterable, List, Optional

from .instruction import DynamicInstruction
from .regfile import PhysicalRegisterFile

#: forwarding_latency(producer_domain, consumer_domain) -> extra ns
ForwardingLatency = Callable[[str, str], float]

_INF = float("inf")


class IssueQueue:
    """One instruction window feeding one set of functional units."""

    def __init__(self, name: str, capacity: int, domain_name: str = "") -> None:
        if capacity <= 0:
            raise ValueError("issue queue capacity must be positive")
        self.name = name
        self.capacity = capacity
        self.domain_name = domain_name
        self._entries: List[DynamicInstruction] = []
        # Entries arrive in program (seq) order from the in-order front end,
        # so the list is kept age-sorted without re-sorting every wakeup; the
        # flag flips if an out-of-order dispatch is ever observed.
        self._needs_sort = False
        # Queue-level wakeup gate: after a complete scan that issued every
        # ready entry, nothing can issue before ``gate_time`` unless a new
        # result completes (``regfile.writes`` moves past ``gate_stamp``) or
        # the queue contents change.  ``gate_time`` < 0 means invalid.
        # ``gate_len`` is the length of the age-ordered prefix the gate
        # covers: entries dispatched after the scan sit beyond it and are
        # the only ones a gated wakeup pass still needs to examine.
        self.gate_time = -1.0
        self.gate_stamp = -1
        self.gate_len = 0
        # producer-domain -> forwarding latency into this queue's domain.
        # Clock periods are immutable once domains are bound (see
        # Processor._forwarding_cache), so the callback result is cached to
        # skip the call on the wakeup hot path.
        self._fwd_cache: dict = {}
        # statistics
        self.dispatches = 0
        self.issues = 0
        self.wakeup_searches = 0
        self.occupancy_accum = 0
        self.occupancy_samples = 0
        self.full_stalls = 0

    # ----------------------------------------------------------------- state
    @property
    def occupancy(self) -> int:
        """Number of instructions waiting in the window."""
        return len(self._entries)

    @property
    def is_full(self) -> bool:
        """True when the window has no free entry."""
        return len(self._entries) >= self.capacity

    @property
    def mean_occupancy(self) -> float:
        """Average occupancy over the sampled cycles."""
        if self.occupancy_samples == 0:
            return 0.0
        return self.occupancy_accum / self.occupancy_samples

    def sample_occupancy(self) -> None:
        """Record the current occupancy (one sample per cluster cycle)."""
        self.occupancy_samples += 1
        self.occupancy_accum += len(self._entries)

    def __iter__(self) -> Iterable[DynamicInstruction]:
        return iter(self._entries)

    # ------------------------------------------------------------ operations
    def dispatch(self, instr: DynamicInstruction) -> None:
        """Insert a renamed instruction into the window."""
        entries = self._entries
        if len(entries) >= self.capacity:
            self.full_stalls += 1
            raise OverflowError(f"issue queue {self.name!r} is full")
        if entries and instr.seq < entries[-1].seq:
            # an out-of-order arrival scrambles the gate's covered prefix
            self._needs_sort = True
            self.gate_time = -1.0
        entries.append(instr)
        self.dispatches += 1

    def ready_instructions(
        self,
        now: float,
        regfile: PhysicalRegisterFile,
        forwarding_latency: ForwardingLatency,
        limit: int,
    ) -> List[DynamicInstruction]:
        """Oldest-first list of instructions whose operands are all visible.

        This models the wakeup/select CAM search: every entry is examined
        (counted as wakeup activity for the power model), and up to ``limit``
        ready entries are returned in age order.
        """
        if limit <= 0:
            return []
        if self._needs_sort:
            self._entries.sort(key=lambda i: i.seq)
            self._needs_sort = False
        ready: List[DynamicInstruction] = []
        searched = 0
        domain_name = self.domain_name
        registers = regfile._registers
        fwd_cache = self._fwd_cache
        # Result visibility is monotonic: once a register value is visible in
        # this domain it stays visible, and a register waiting on an
        # incomplete producer cannot become visible before some
        # ``mark_ready`` bumps ``regfile.writes``.  Each entry therefore
        # caches the time its operands become visible (``wakeup_after``) --
        # or, while a producer is still in flight, the write-counter value it
        # last checked against (``wakeup_stamp``) -- and the wakeup search
        # skips it with one comparison instead of re-probing every operand
        # every cycle.
        write_stamp = regfile.writes
        scan_complete = True
        min_future = _INF
        for instr in self._entries:
            searched += 1
            wakeup_after = instr.wakeup_after
            if wakeup_after > now:
                if wakeup_after < _INF:
                    if wakeup_after < min_future:
                        min_future = wakeup_after
                    continue              # visibility time known, still ahead
                if instr.wakeup_stamp == write_stamp:
                    continue              # still blocked: no new completions
            elif wakeup_after >= 0.0:
                # known ready: operands were visible at an earlier check
                ready.append(instr)
                if len(ready) >= limit:
                    scan_complete = False
                    break
                continue
            # blocked entry with fresh completions, or never-checked entry
            # (wakeup_after < 0): probe every operand and refresh the cache
            visible_at = 0.0
            for phys in instr.phys_sources:
                reg = registers[phys]
                source_visible = reg.ready_time
                if source_visible == _INF:
                    visible_at = _INF
                    break
                producer_domain = reg.producer_domain
                if producer_domain and producer_domain != domain_name:
                    extra = fwd_cache.get(producer_domain)
                    if extra is None:
                        extra = forwarding_latency(producer_domain,
                                                   domain_name)
                        fwd_cache[producer_domain] = extra
                    source_visible += extra
                if source_visible > visible_at:
                    visible_at = source_visible
            instr.wakeup_after = visible_at
            if visible_at > now:
                if visible_at == _INF:
                    instr.wakeup_stamp = write_stamp
                elif visible_at < min_future:
                    min_future = visible_at
                continue
            ready.append(instr)
            if len(ready) >= limit:
                scan_complete = False     # tail not examined this cycle
                break
        self.wakeup_searches += searched
        if scan_complete:
            self.gate_time = min_future
            self.gate_stamp = write_stamp
            self.gate_len = len(self._entries)
        else:
            self.gate_time = -1.0
        return ready

    def remove(self, instr: DynamicInstruction) -> None:
        """Remove an instruction that has been issued."""
        self._entries.remove(instr)
        self.issues += 1
        self.gate_time = -1.0

    def squash_younger_than(self, branch_seq: int) -> List[DynamicInstruction]:
        """Drop wrong-path instructions after a misprediction."""
        squashed = [i for i in self._entries if i.seq > branch_seq]
        if squashed:
            self._entries = [i for i in self._entries if i.seq <= branch_seq]
            for instr in squashed:
                instr.squashed = True
            self.gate_time = -1.0
        return squashed
