"""Composition of the paper's memory hierarchy (Table 3).

* L1 I-cache: 16 KB direct-mapped, 1-cycle latency
* L1 D-cache: 16 KB 4-way, 1-cycle latency
* L2 unified: 256 KB 4-way, 6-cycle latency
* main memory: fixed latency (not specified in the paper; 60 cycles default,
  a typical value for the era's SimpleScalar configurations)
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from .cache import Cache, MainMemory


@dataclass
class MemoryHierarchyConfig:
    """Sizes and latencies of the cache hierarchy."""

    il1_size: int = 16 * 1024
    il1_assoc: int = 1
    il1_latency: int = 1
    dl1_size: int = 16 * 1024
    dl1_assoc: int = 4
    dl1_latency: int = 1
    l2_size: int = 256 * 1024
    l2_assoc: int = 4
    l2_latency: int = 6
    line_size: int = 32
    memory_latency: int = 60
    replacement: str = "lru"

    def validate(self) -> None:
        """Reject non-positive sizes/latencies early, with a field name in the error."""
        for name in ("il1_size", "dl1_size", "l2_size", "line_size"):
            if getattr(self, name) <= 0:
                raise ValueError(f"{name} must be positive")
        for name in ("il1_latency", "dl1_latency", "l2_latency", "memory_latency"):
            if getattr(self, name) < 0:
                raise ValueError(f"{name} must be non-negative")


class MemoryHierarchy:
    """The assembled hierarchy: two L1s sharing a unified L2 and main memory."""

    def __init__(self, config: Optional[MemoryHierarchyConfig] = None) -> None:
        self.config = config or MemoryHierarchyConfig()
        self.config.validate()
        cfg = self.config
        self.memory = MainMemory(latency=cfg.memory_latency)
        self.l2 = Cache("l2", cfg.l2_size, cfg.l2_assoc, cfg.line_size,
                        hit_latency=cfg.l2_latency, replacement=cfg.replacement,
                        next_level=self.memory)
        self.icache = Cache("il1", cfg.il1_size, cfg.il1_assoc, cfg.line_size,
                            hit_latency=cfg.il1_latency,
                            replacement=cfg.replacement, next_level=self.l2)
        self.dcache = Cache("dl1", cfg.dl1_size, cfg.dl1_assoc, cfg.line_size,
                            hit_latency=cfg.dl1_latency,
                            replacement=cfg.replacement, next_level=self.l2)
        # Sequential-fetch fast path: consecutive fetches overwhelmingly hit
        # the line of the previous fetch.  With a direct-mapped I-cache a
        # repeat hit has no replacement state to update, so it reduces to the
        # statistics increments.  Any access to a *different* line takes the
        # full path (which installs the line on a miss, so the remembered
        # line is always resident afterwards).
        self._fetch_line_valid = cfg.il1_assoc == 1
        self._last_fetch_line = -1

    def fetch_access(self, pc: int) -> int:
        """Instruction fetch: latency in cycles to obtain the line holding pc."""
        icache = self.icache
        line = pc // self.config.line_size
        if line == self._last_fetch_line:
            stats = icache.stats
            stats.accesses += 1
            stats.hits += 1
            return icache.hit_latency
        latency = icache.access(pc, is_write=False)
        if self._fetch_line_valid:
            self._last_fetch_line = line
        return latency

    def load_access(self, address: int) -> int:
        """Data load: latency in cycles."""
        return self.dcache.access(address, is_write=False)

    def store_access(self, address: int) -> int:
        """Data store (performed at commit): latency in cycles."""
        return self.dcache.access(address, is_write=True)

    def reset_stats(self) -> None:
        """Zero the statistics of every level (contents are kept)."""
        self.icache.reset_stats()
        self.dcache.reset_stats()
        self.l2.reset_stats()
        self.memory.reset_stats()

    def flush(self) -> None:
        """Empty every cache level (statistics are kept)."""
        self._last_fetch_line = -1
        self.icache.flush()
        self.dcache.flush()
        self.l2.flush()
