"""Set-associative cache timing model.

Models the three caches of Table 3:

* 16 KB direct-mapped L1 instruction cache, 1-cycle latency,
* 16 KB 4-way L1 data cache, 1-cycle latency,
* 256 KB 4-way unified L2, 6-cycle latency,

backed by a fixed-latency main memory.  The model is a *timing* model: no data
is stored, only tags, so an access returns the number of cycles (of the cache's
owning clock domain) it takes to obtain the line.  Accesses also count toward
the Wattch-style power accounting (each access charges the array's per-access
energy).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from .replacement import ReplacementPolicy, make_policy


@dataclass
class CacheStats:
    """Hit/miss counters for one cache."""

    accesses: int = 0
    hits: int = 0
    misses: int = 0
    evictions: int = 0
    writebacks: int = 0

    @property
    def miss_rate(self) -> float:
        """Misses per access (0.0 before any access)."""
        if self.accesses == 0:
            return 0.0
        return self.misses / self.accesses

    @property
    def hit_rate(self) -> float:
        """Hits per access (0.0 before any access)."""
        if self.accesses == 0:
            return 0.0
        return self.hits / self.accesses


@dataclass
class CacheGeometry:
    """Size/shape parameters of a cache."""

    size_bytes: int
    associativity: int
    line_size: int = 32

    def __post_init__(self) -> None:
        if self.size_bytes <= 0 or self.associativity <= 0 or self.line_size <= 0:
            raise ValueError("cache geometry values must be positive")
        if self.size_bytes % (self.associativity * self.line_size) != 0:
            raise ValueError(
                "cache size must be a multiple of associativity * line size")

    @property
    def num_sets(self) -> int:
        """Number of sets implied by size, line size and associativity."""
        return self.size_bytes // (self.associativity * self.line_size)


class _CacheSet:
    """Tags and replacement state for one set."""

    __slots__ = ("tags", "valid", "dirty", "policy")

    def __init__(self, associativity: int, policy: ReplacementPolicy) -> None:
        self.tags: List[Optional[int]] = [None] * associativity
        self.valid: List[bool] = [False] * associativity
        self.dirty: List[bool] = [False] * associativity
        self.policy = policy

    def lookup(self, tag: int) -> Optional[int]:
        valid = self.valid
        for way, stored in enumerate(self.tags):
            if stored == tag and valid[way]:
                return way
        return None


class Cache:
    """A single level of set-associative cache."""

    def __init__(
        self,
        name: str,
        size_bytes: int,
        associativity: int,
        line_size: int = 32,
        hit_latency: int = 1,
        replacement: str = "lru",
        next_level: Optional["MemoryLevel"] = None,
        write_allocate: bool = True,
    ) -> None:
        self.name = name
        self.geometry = CacheGeometry(size_bytes, associativity, line_size)
        self.hit_latency = hit_latency
        self.next_level = next_level
        self.write_allocate = write_allocate
        self.stats = CacheStats()
        self._replacement_name = replacement
        self._sets: Dict[int, _CacheSet] = {}
        # addressing constants hoisted off the geometry properties
        self._line_size = self.geometry.line_size
        self._num_sets = self.geometry.num_sets
        self._assoc = self.geometry.associativity

    # ------------------------------------------------------------ addressing
    def _index_and_tag(self, address: int) -> tuple:
        line = address // self._line_size
        num_sets = self._num_sets
        return line % num_sets, line // num_sets

    def _set_for(self, index: int) -> _CacheSet:
        cache_set = self._sets.get(index)
        if cache_set is None:
            policy = make_policy(self._replacement_name,
                                 self.geometry.associativity, seed=index)
            cache_set = _CacheSet(self.geometry.associativity, policy)
            self._sets[index] = cache_set
        return cache_set

    # --------------------------------------------------------------- access
    def access(self, address: int, is_write: bool = False) -> int:
        """Access ``address``; returns total latency in cycles.

        On a miss the line is fetched from the next level (whose latency is
        added) and installed; a dirty victim adds a writeback.  The hit path
        (one access per fetch cycle plus every load/store) is fully inlined.
        """
        stats = self.stats
        stats.accesses += 1
        line = address // self._line_size
        num_sets = self._num_sets
        index = line % num_sets
        tag = line // num_sets
        cache_set = self._sets.get(index)
        if cache_set is None:
            cache_set = self._set_for(index)
        tags = cache_set.tags
        valid = cache_set.valid
        for way in range(self._assoc):
            if tags[way] == tag and valid[way]:
                stats.hits += 1
                if self._assoc > 1:
                    # single-way sets have no replacement state to update
                    cache_set.policy.on_access(way)
                if is_write:
                    cache_set.dirty[way] = True
                return self.hit_latency

        # miss
        self.stats.misses += 1
        miss_latency = self.hit_latency
        if self.next_level is not None:
            miss_latency += self.next_level.access(address, is_write=False)
        if is_write and not self.write_allocate:
            if self.next_level is not None:
                # write-through of the miss, no fill
                return miss_latency
            return miss_latency
        victim = cache_set.policy.victim(cache_set.valid)
        if cache_set.valid[victim]:
            self.stats.evictions += 1
            if cache_set.dirty[victim]:
                self.stats.writebacks += 1
                if self.next_level is not None:
                    self.next_level.access(
                        self._reconstruct_address(index, cache_set.tags[victim]),
                        is_write=True)
        cache_set.tags[victim] = tag
        cache_set.valid[victim] = True
        cache_set.dirty[victim] = bool(is_write)
        cache_set.policy.on_fill(victim)
        return miss_latency

    def probe(self, address: int) -> bool:
        """Non-destructive lookup: True when the line is present."""
        index, tag = self._index_and_tag(address)
        cache_set = self._sets.get(index)
        if cache_set is None:
            return False
        return cache_set.lookup(tag) is not None

    def _reconstruct_address(self, index: int, tag: int) -> int:
        line = tag * self.geometry.num_sets + index
        return line * self.geometry.line_size

    def flush(self) -> None:
        """Invalidate every line (used between benchmark runs)."""
        self._sets.clear()

    def reset_stats(self) -> None:
        """Zero the hit/miss statistics (cache contents are kept)."""
        self.stats = CacheStats()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        g = self.geometry
        return (f"Cache({self.name!r}, {g.size_bytes // 1024}KB, "
                f"{g.associativity}-way, {g.line_size}B lines, "
                f"{self.hit_latency}-cycle)")


class MainMemory:
    """Fixed-latency main memory behind the L2."""

    def __init__(self, latency: int = 50, name: str = "memory") -> None:
        if latency < 0:
            raise ValueError("memory latency must be non-negative")
        self.name = name
        self.latency = latency
        self.accesses = 0
        self.reads = 0
        self.writes = 0

    def access(self, address: int, is_write: bool = False) -> int:
        """Access main memory; returns the fixed memory latency in cycles."""
        self.accesses += 1
        if is_write:
            self.writes += 1
        else:
            self.reads += 1
        return self.latency

    def reset_stats(self) -> None:
        """Zero the access counters."""
        self.accesses = 0
        self.reads = 0
        self.writes = 0


#: Anything with an ``access(address, is_write) -> latency`` method.
MemoryLevel = object
