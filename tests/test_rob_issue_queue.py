"""Unit tests for the reorder buffer and issue queues."""

import pytest

from repro.isa.instructions import InstructionClass
from repro.isa.trace import TraceInstruction
from repro.uarch.instruction import DynamicInstruction
from repro.uarch.issue_queue import IssueQueue
from repro.uarch.regfile import PhysicalRegisterFile
from repro.uarch.rob import ReorderBuffer, ReorderBufferFullError


def make_instr(opclass=InstructionClass.INT_ALU, sources=()):
    trace = TraceInstruction(index=0, pc=0x400000, opclass=opclass, dest=1,
                             sources=tuple(sources))
    return DynamicInstruction(trace, epoch=0)


def no_forwarding(producer, consumer):
    return 0.0


# ----------------------------------------------------------------------- ROB
def test_rob_allocate_retire_in_order():
    rob = ReorderBuffer(capacity=4)
    instrs = [make_instr() for _ in range(3)]
    for instr in instrs:
        rob.allocate(instr)
    assert rob.occupancy == 3
    assert rob.head() is instrs[0]
    assert rob.retire_head() is instrs[0]
    assert rob.head() is instrs[1]
    assert rob.retirements == 1


def test_rob_capacity_enforced():
    rob = ReorderBuffer(capacity=2)
    rob.allocate(make_instr())
    rob.allocate(make_instr())
    assert rob.is_full
    with pytest.raises(ReorderBufferFullError):
        rob.allocate(make_instr())


def test_rob_squash_younger_than_branch():
    rob = ReorderBuffer(capacity=8)
    older = make_instr()
    branch = make_instr(opclass=InstructionClass.BRANCH)
    younger = [make_instr() for _ in range(3)]
    for instr in [older, branch, *younger]:
        rob.allocate(instr)
    squashed = rob.squash_younger_than(branch.seq)
    assert squashed == younger
    assert all(i.squashed for i in younger)
    assert rob.occupancy == 2
    assert rob.squashes == 3


def test_rob_occupancy_sampling_and_empty_retire():
    rob = ReorderBuffer(capacity=4)
    rob.sample_occupancy()
    rob.allocate(make_instr())
    rob.sample_occupancy()
    assert rob.mean_occupancy == pytest.approx(0.5)
    rob.retire_head()
    with pytest.raises(LookupError):
        rob.retire_head()


def test_rob_invalid_capacity():
    with pytest.raises(ValueError):
        ReorderBuffer(capacity=0)


# --------------------------------------------------------------- issue queues
def test_issue_queue_dispatch_and_capacity():
    queue = IssueQueue("iq_int", capacity=2, domain_name="integer")
    queue.dispatch(make_instr())
    queue.dispatch(make_instr())
    assert queue.is_full
    with pytest.raises(OverflowError):
        queue.dispatch(make_instr())
    assert queue.full_stalls == 1


def test_ready_instructions_respect_operand_readiness():
    regfile = PhysicalRegisterFile()
    queue = IssueQueue("iq_int", capacity=8, domain_name="integer")
    pending = regfile.allocate(for_fp=False)
    regfile.mark_pending(pending)
    waiting = make_instr(sources=())
    waiting.phys_sources = (pending,)
    ready = make_instr(sources=())
    ready.phys_sources = (3,)  # architectural value, always ready
    queue.dispatch(waiting)
    queue.dispatch(ready)
    selected = queue.ready_instructions(0.0, regfile, no_forwarding, limit=4)
    assert selected == [ready]
    regfile.mark_ready(pending, 5.0, "integer")
    selected = queue.ready_instructions(5.0, regfile, no_forwarding, limit=4)
    assert waiting in selected and ready in selected


def test_ready_instructions_oldest_first_and_limited():
    regfile = PhysicalRegisterFile()
    queue = IssueQueue("iq_int", capacity=8, domain_name="integer")
    instrs = [make_instr() for _ in range(4)]
    for instr in instrs:
        instr.phys_sources = ()
        queue.dispatch(instr)
    selected = queue.ready_instructions(0.0, regfile, no_forwarding, limit=2)
    assert selected == instrs[:2]
    assert queue.ready_instructions(0.0, regfile, no_forwarding, limit=0) == []


def test_issue_queue_remove_and_squash():
    queue = IssueQueue("iq_int", capacity=8, domain_name="integer")
    keep = make_instr()
    drop = make_instr()
    queue.dispatch(keep)
    queue.dispatch(drop)
    squashed = queue.squash_younger_than(keep.seq)
    assert squashed == [drop] and drop.squashed
    queue.remove(keep)
    assert queue.occupancy == 0
    assert queue.issues == 1


def test_issue_queue_occupancy_stats():
    queue = IssueQueue("iq_int", capacity=8, domain_name="integer")
    queue.dispatch(make_instr())
    queue.sample_occupancy()
    queue.sample_occupancy()
    assert queue.mean_occupancy == pytest.approx(1.0)
    assert queue.dispatches == 1


def test_issue_queue_invalid_capacity():
    with pytest.raises(ValueError):
        IssueQueue("iq", capacity=0)


def test_scan_gate_len_clamped_by_squash_inside_covered_prefix():
    """Regression: a squash or remove that shrinks the window below the
    wakeup gate's covered-prefix length must clamp ``gate_len`` -- a stale
    length would make a later gated scan trust a prefix that no longer
    exists (legacy scan scheme)."""
    regfile = PhysicalRegisterFile()
    queue = IssueQueue("iq_int", capacity=8, domain_name="integer")
    pending = regfile.allocate(for_fp=False)
    instrs = [make_instr() for _ in range(5)]
    for instr in instrs:
        instr.phys_sources = (pending,)        # all blocked: nothing issues
        queue.dispatch(instr)
    queue.ready_instructions(0.0, regfile, no_forwarding, limit=8)
    assert queue.gate_len == 5                 # complete scan covers everything
    queue.squash_younger_than(instrs[1].seq)   # squash inside the prefix
    assert queue.occupancy == 2
    assert queue.gate_len == 2                 # clamped, not stale at 5
    queue.remove(instrs[0])
    assert queue.gate_len == 1
    # the shrunken window still scans correctly once the operand lands
    regfile.mark_ready(pending, 3.0, "integer")
    selected = queue.ready_instructions(3.0, regfile, no_forwarding, limit=8)
    assert selected == [instrs[1]]
