"""Commit stage (clock domain 2, pipeline stage 8: regfile write + commit).

Instructions retire in program order from the reorder buffer once their
execution has completed *and the completion is visible in the commit domain*.
In the GALS machine a completion produced in the integer, FP or memory domain
has to cross a FIFO back to domain 2 before the instruction can retire, so the
commit stage is a second place (after operand forwarding) where inter-domain
latency stretches the instruction slip (Figures 6-7).

The commit unit is also the central statistics collector: per committed
instruction it records the slip and its FIFO share, and per cycle it samples
the occupancy statistics the paper discusses (ROB, register allocation,
in-flight count).
"""

from __future__ import annotations

from typing import Callable, Optional

from ..memory.hierarchy import MemoryHierarchy
from .instruction import DynamicInstruction
from .issue_queue import ForwardingLatency
from .regfile import PhysicalRegisterFile
from .rename import RegisterAliasTable
from .rob import ReorderBuffer


class CommitUnit:
    """In-order retirement."""

    def __init__(
        self,
        rob: ReorderBuffer,
        rat: RegisterAliasTable,
        regfile: PhysicalRegisterFile,
        memory: MemoryHierarchy,
        domain_name: str,
        forwarding_latency: ForwardingLatency,
        activity,
        stats,
        commit_width: int = 4,
    ) -> None:
        self.rob = rob
        self.rat = rat
        self.regfile = regfile
        self.memory = memory
        self.domain_name = domain_name
        self.forwarding_latency = forwarding_latency
        self.activity = activity
        self.stats = stats
        self.commit_width = commit_width
        # statistics local to the stage
        self.committed = 0
        self.commit_stall_cycles = 0

    # --------------------------------------------------------------- clocking
    def clock_edge(self, cycle: int, time: float) -> None:
        committed_this_cycle = 0
        while committed_this_cycle < self.commit_width:
            head = self.rob.head()
            if head is None:
                break
            if not self._can_commit(head, time):
                if committed_this_cycle == 0:
                    self.commit_stall_cycles += 1
                break
            self._commit_one(head, time)
            committed_this_cycle += 1
        self._sample(time)

    def _can_commit(self, instr: DynamicInstruction, now: float) -> bool:
        if not instr.completed:
            return False
        visible_at = instr.complete_time
        if instr.exec_domain and instr.exec_domain != self.domain_name:
            visible_at += self.forwarding_latency(instr.exec_domain, self.domain_name)
        return visible_at <= now

    def _commit_one(self, instr: DynamicInstruction, now: float) -> None:
        self.rob.retire_head()
        instr.commit_time = now
        # Completion had to cross back into the commit domain; that wait is
        # FIFO residency from the instruction's point of view.
        if instr.exec_domain and instr.exec_domain != self.domain_name:
            instr.record_fifo_wait(
                self.forwarding_latency(instr.exec_domain, self.domain_name))
        if instr.prev_phys_dest is not None:
            self.regfile.free(instr.prev_phys_dest)
        if instr.is_branch and instr.rename_checkpoint is not None:
            self.rat.release_checkpoint(instr.rename_checkpoint)
        if instr.is_store and instr.trace.mem_address is not None:
            self.memory.store_access(instr.trace.mem_address)
            self.activity.record("dcache", 1)
        self.activity.record("regfile_write", 1)
        self.committed += 1
        if self.stats is not None:
            self.stats.record_commit(instr, now)

    def _sample(self, now: float) -> None:
        self.rob.sample_occupancy()
        if self.stats is not None:
            self.stats.sample_occupancy(
                rob=self.rob.occupancy,
                int_regs_in_use=self.regfile.int_in_use,
                fp_regs_in_use=self.regfile.fp_in_use,
            )

    # ------------------------------------------------------------------ state
    def pending_work(self) -> int:
        return self.rob.occupancy
