"""General-purpose event-driven simulation engine.

This is the Python equivalent of the C engine sketched in Figure 4 of the
paper: an event queue plus a global timer.  It can simulate purely
asynchronous systems, purely clocked systems (via periodic events -- one per
clock domain) and mixtures of the two, which is exactly what the GALS
processor model needs.

Typical use::

    engine = SimulationEngine()
    engine.schedule_periodic(start=0.5, period=2.0, callback=clock1_logic)
    engine.schedule_periodic(start=1.0, period=3.0, callback=clock2_logic)
    engine.schedule_periodic(start=0.0, period=2.5, callback=clock3_logic)
    engine.run(until=100.0)
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, Iterable, List, Optional

from .event import Event, SimulationError


class SimulationEngine:
    """Discrete-event simulator with support for periodic (clock) events.

    Time is a float in nanoseconds by convention throughout the library,
    although the engine itself is unit-agnostic.
    """

    def __init__(self) -> None:
        self._queue: List[Event] = []
        self._now: float = 0.0
        self._events_processed: int = 0
        self._running: bool = False
        self._stop_requested: bool = False

    # ------------------------------------------------------------------ time
    @property
    def now(self) -> float:
        """Current simulation time."""
        return self._now

    @property
    def events_processed(self) -> int:
        """Number of events executed so far."""
        return self._events_processed

    @property
    def pending_events(self) -> int:
        """Number of events still waiting in the queue (including cancelled)."""
        return len(self._queue)

    # ------------------------------------------------------------- scheduling
    def schedule(
        self,
        time: float,
        callback: Callable[[Any], None],
        param: Any = None,
        priority: int = 0,
        name: str = "",
    ) -> Event:
        """Schedule a one-shot event at absolute time ``time``."""
        if time < self._now:
            raise SimulationError(
                f"cannot schedule event at {time} before current time {self._now}"
            )
        event = Event(time=time, priority=priority, callback=callback,
                      param=param, name=name)
        heapq.heappush(self._queue, event)
        return event

    def schedule_after(
        self,
        delay: float,
        callback: Callable[[Any], None],
        param: Any = None,
        priority: int = 0,
        name: str = "",
    ) -> Event:
        """Schedule a one-shot event ``delay`` time units from now."""
        if delay < 0:
            raise SimulationError(f"negative delay {delay}")
        return self.schedule(self._now + delay, callback, param, priority, name)

    def schedule_periodic(
        self,
        start: float,
        period: float,
        callback: Callable[[Any], None],
        param: Any = None,
        priority: int = 0,
        name: str = "",
    ) -> Event:
        """Schedule a periodic event -- the building block for clock domains.

        The first occurrence happens at absolute time ``start``; afterwards the
        event re-schedules itself every ``period`` time units until cancelled.
        The returned handle refers to the *first* occurrence; cancelling it
        before it fires stops the whole chain.  To stop an already-running
        periodic chain use :meth:`cancel_chain` with the event name, or have
        the callback raise :class:`StopIteration`.
        """
        if period <= 0:
            raise SimulationError(f"period must be positive, got {period}")
        if start < self._now:
            raise SimulationError(
                f"cannot start periodic event at {start} before now {self._now}"
            )
        event = Event(time=start, priority=priority, callback=callback,
                      param=param, period=period, name=name)
        heapq.heappush(self._queue, event)
        return event

    def cancel_chain(self, name: str) -> int:
        """Cancel every pending event whose name matches ``name``.

        Returns the number of events cancelled.  Used to stop clock domains.
        """
        count = 0
        for event in self._queue:
            if event.name == name and not event.cancelled:
                event.cancel()
                count += 1
        return count

    # ------------------------------------------------------------------- run
    def step(self) -> Optional[Event]:
        """Execute the single next non-cancelled event.  Returns it, or None."""
        while self._queue:
            event = heapq.heappop(self._queue)
            if event.cancelled:
                continue
            if event.time < self._now:
                raise SimulationError("event queue corrupted: time went backwards")
            self._now = event.time
            event.fire()
            self._events_processed += 1
            if event.is_periodic and not event.cancelled:
                heapq.heappush(self._queue, event.next_occurrence())
            return event
        return None

    def run(
        self,
        until: Optional[float] = None,
        max_events: Optional[int] = None,
        stop_condition: Optional[Callable[[], bool]] = None,
    ) -> float:
        """Run the simulation.

        Parameters
        ----------
        until:
            Absolute time at which to stop (events at exactly ``until`` are
            still processed).  ``None`` runs until the queue drains.
        max_events:
            Safety limit on the number of events processed in this call.
        stop_condition:
            Callable evaluated after every event; simulation stops when it
            returns True.  Used to stop once a processor has committed the
            requested number of instructions.

        Returns the simulation time at which the run stopped.
        """
        self._running = True
        self._stop_requested = False
        processed_this_call = 0
        try:
            while self._queue and not self._stop_requested:
                next_time = self._peek_time()
                if until is not None and next_time is not None and next_time > until:
                    self._now = until
                    break
                if self.step() is None:
                    break
                processed_this_call += 1
                if stop_condition is not None and stop_condition():
                    break
                if max_events is not None and processed_this_call >= max_events:
                    break
        finally:
            self._running = False
        return self._now

    def stop(self) -> None:
        """Request the current :meth:`run` call to stop after the current event."""
        self._stop_requested = True

    def _peek_time(self) -> Optional[float]:
        """Time of the next non-cancelled event, or None if the queue is empty."""
        while self._queue and self._queue[0].cancelled:
            heapq.heappop(self._queue)
        if not self._queue:
            return None
        return self._queue[0].time

    # ------------------------------------------------------------------ misc
    def drain(self) -> Iterable[Event]:
        """Remove and yield all remaining events without executing them."""
        while self._queue:
            event = heapq.heappop(self._queue)
            if not event.cancelled:
                yield event

    def reset(self) -> None:
        """Clear the queue and reset time to zero."""
        self._queue.clear()
        self._now = 0.0
        self._events_processed = 0
        self._stop_requested = False
