"""Shared fixtures: cached base/GALS runs used by several integration tests.

Cycle-accurate runs are the expensive part of this test suite, so the standard
"perl" base/GALS pair (and one DVFS run) are computed once per session and
shared by every test that only needs to *inspect* results.
"""

import pytest

from repro.core.config import ProcessorConfig
from repro.core.experiments import run_pair, run_single, selective_slowdown
from repro.core.dvfs import GCC_GALS_1

#: Small but representative trace length for integration tests.
TEST_INSTRUCTIONS = 900


@pytest.fixture(scope="session")
def small_config():
    return ProcessorConfig()


@pytest.fixture(scope="session")
def perl_pair():
    """Base-vs-GALS comparison row for the perl profile."""
    return run_pair("perl", num_instructions=TEST_INSTRUCTIONS, seed=1)


@pytest.fixture(scope="session")
def perl_base(perl_pair):
    return perl_pair.base_result


@pytest.fixture(scope="session")
def perl_gals(perl_pair):
    return perl_pair.gals_result


@pytest.fixture(scope="session")
def fpppp_pair():
    """Base-vs-GALS comparison for the branch-poor fpppp profile."""
    return run_pair("fpppp", num_instructions=TEST_INSTRUCTIONS, seed=1)


@pytest.fixture(scope="session")
def gcc_dvfs_result():
    """The gcc 'gals-1' DVFS case study (Figure 13), at test scale."""
    return selective_slowdown("gcc", GCC_GALS_1,
                              num_instructions=TEST_INSTRUCTIONS, seed=1)
