#!/usr/bin/env python
"""Docstring-coverage gate over ``src/repro/`` (no third-party deps).

Counts docstrings on modules, classes and functions/methods the way
``interrogate`` does by default, but implemented on the standard-library
``ast`` module so the check runs in hermetic environments where installing
``interrogate`` is not an option.  CI fails the build when coverage drops
below the floor (see ``--fail-under``); the same floor is enforced by
``tests/test_docs.py`` so a regression is caught before it reaches CI.

What counts as a documentable object:

* every module (``__init__.py`` included);
* every class and every function/method, *except* private ones (a leading
  underscore anywhere in the dotted path) and trivial ``__repr__``-style
  dunders -- ``__init__`` is documented through its class, matching the
  convention this codebase uses.

Usage::

    python tools/docstring_coverage.py [--fail-under 95] [--verbose]
"""

from __future__ import annotations

import argparse
import ast
import sys
from pathlib import Path
from typing import Iterator, List, Tuple

#: Default coverage floor (percent).  The codebase sits well above this;
#: the margin absorbs small refactors without letting coverage rot.
DEFAULT_FLOOR = 95.0

#: Dunder methods whose behaviour is defined by the data model; a docstring
#: on them would restate the obvious.
_EXEMPT_DUNDERS = {"__init__", "__repr__", "__str__", "__iter__", "__len__",
                   "__eq__", "__hash__", "__enter__", "__exit__",
                   "__post_init__", "__main__",
                   "__lt__", "__le__", "__gt__", "__ge__"}


def _is_private(name: str) -> bool:
    return name.startswith("_") and not (name.startswith("__")
                                         and name.endswith("__"))


def iter_objects(tree: ast.Module) -> Iterator[Tuple[str, ast.AST]]:
    """Yield (dotted name, node) for every documentable def/class."""
    def walk(node: ast.AST, prefix: str, skip: bool) -> Iterator:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef,
                                  ast.ClassDef)):
                name = child.name
                hidden = skip or _is_private(name)
                if name in _EXEMPT_DUNDERS:
                    hidden = True
                dotted = f"{prefix}{name}"
                if not hidden:
                    yield dotted, child
                yield from walk(child, f"{dotted}.", hidden)
    yield from walk(tree, "", False)


def file_coverage(path: Path) -> Tuple[int, int, List[str]]:
    """(documented, total, missing names) for one source file."""
    tree = ast.parse(path.read_text())
    documented, total = 0, 1           # the module itself
    missing: List[str] = []
    if ast.get_docstring(tree):
        documented += 1
    else:
        missing.append("(module)")
    for name, node in iter_objects(tree):
        total += 1
        if ast.get_docstring(node):
            documented += 1
        else:
            missing.append(name)
    return documented, total, missing


def measure(root: Path, verbose: bool = False) -> float:
    """Print a report for every file under ``root``; return coverage %."""
    documented_total, total_total = 0, 0
    rows = []
    for path in sorted(root.rglob("*.py")):
        documented, total, missing = file_coverage(path)
        documented_total += documented
        total_total += total
        rows.append((path, documented, total, missing))
    for path, documented, total, missing in rows:
        if verbose or documented < total:
            print(f"{path}: {documented}/{total}")
            for name in missing:
                print(f"    missing: {name}")
    if not total_total:
        raise SystemExit(f"error: no Python sources under {root}")
    return 100.0 * documented_total / total_total


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--root", default="src/repro",
                        help="package directory to measure (default: src/repro)")
    parser.add_argument("--fail-under", type=float, default=DEFAULT_FLOOR,
                        metavar="PCT",
                        help=f"minimum coverage %% (default {DEFAULT_FLOOR})")
    parser.add_argument("--verbose", action="store_true",
                        help="per-file breakdown even for fully covered files")
    args = parser.parse_args(argv)
    coverage = measure(Path(args.root), verbose=args.verbose)
    print(f"docstring coverage: {coverage:.1f}% "
          f"(floor {args.fail_under:.1f}%)")
    if coverage < args.fail_under:
        print("FAILED: docstring coverage below the floor", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
