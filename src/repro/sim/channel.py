"""Communication channels between pipeline stages.

Two kinds of channel exist in the processor models:

* :class:`SyncQueue` -- an ordinary pipeline latch / buffer between stages in
  the *same* clock domain.  Items written on one edge are visible on the next
  edge (the stage evaluation order takes care of that); there is no
  synchronization penalty.  This is what the synchronous base processor uses
  everywhere (Figure 3a).

* ``MixedClockFifo`` (in :mod:`repro.async_comm.fifo`) -- the Chelcea/Nowick
  style asynchronous FIFO used between clock domains of the GALS processor
  (Figure 3b).  It shares this interface but adds synchronization latency on
  both the data/empty path and the full path.

Both implement the :class:`Channel` interface so the processor assembly code
is identical for the two machines; only the channel factory differs.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Callable, Deque, Iterable, List, Optional, Tuple


class Channel:
    """Common interface and bookkeeping for inter-stage channels."""

    #: Whether residency in this channel counts as "FIFO time" in the slip
    #: breakdown of Figure 7 (True only for mixed-clock FIFOs).
    counts_as_fifo: bool = False

    def __init__(self, name: str, capacity: int) -> None:
        if capacity <= 0:
            raise ValueError(f"channel {name!r}: capacity must be positive")
        self.name = name
        self.capacity = capacity
        #: optional shared one-element transfer counter ([pushes + pops]),
        #: incremented inline by channels that support it so per-cycle power
        #: probes read one cell instead of re-summing every channel
        self._transfer_box: Optional[list] = None
        # statistics
        self.push_count = 0
        self.pop_count = 0
        self.flush_count = 0
        self.total_wait = 0.0
        self.last_pop_wait = 0.0
        self.occupancy_samples = 0
        self.occupancy_accum = 0
        self.full_stall_count = 0

    # ----------------------------------------------------------------- stats
    @property
    def mean_wait(self) -> float:
        """Average residency time of popped items."""
        if self.pop_count == 0:
            return 0.0
        return self.total_wait / self.pop_count

    @property
    def mean_occupancy(self) -> float:
        """Average occupancy over the cycles where it was sampled."""
        if self.occupancy_samples == 0:
            return 0.0
        return self.occupancy_accum / self.occupancy_samples

    def sample_occupancy(self) -> None:
        """Record the current occupancy (called once per consumer cycle)."""
        self.occupancy_samples += 1
        self.occupancy_accum += self.occupancy

    def record_full_stall(self) -> None:
        """Note that a producer wanted to push but the channel appeared full."""
        self.full_stall_count += 1

    def attach_transfer_counter(self, box: list) -> None:
        """Share a one-element list that push/pop increment (power probes)."""
        self._transfer_box = box

    # ------------------------------------------------------------- interface
    @property
    def occupancy(self) -> int:  # pragma: no cover - overridden
        """Number of items currently in the channel."""
        raise NotImplementedError

    def can_push(self, time: float) -> bool:  # pragma: no cover - overridden
        """Whether the producer may push at ``time``."""
        raise NotImplementedError

    def free_slots(self, time: float) -> int:
        """Number of pushes the producer may perform at ``time``.

        Producer-side visibility only changes at the producer's own pushes
        within one simulation instant, so a producer draining a whole fetch
        or dispatch group can take one grant count instead of re-probing
        ``can_push`` per item.
        """
        raise NotImplementedError  # pragma: no cover - overridden

    def push(self, item: Any, time: float) -> None:  # pragma: no cover
        """Insert one item at ``time`` (raises when apparently full)."""
        raise NotImplementedError

    def push_granted(self, item: Any, time: float) -> None:
        """Insert one item after a same-``time`` :meth:`can_push` returned True.

        The producer pipelines call ``can_push`` immediately before pushing,
        so subclasses override this with a variant that skips the repeated
        space-expiry and capacity checks.  Calling it without the preceding
        grant is a contract violation (it may overfill the channel).
        """
        self.push(item, time)

    def can_pop(self, time: float) -> bool:  # pragma: no cover - overridden
        """Whether the consumer can pop at ``time``."""
        raise NotImplementedError

    def pop_ready(self, time: float) -> Any:
        """Pop and return the next consumable item, or None when nothing is
        visible yet (fused can_pop + pop for the per-cycle drain loops)."""
        if self.can_pop(time):
            return self.pop(time)
        return None

    def pop_bulk(self, time: float, limit: int) -> List[Tuple[Any, float]]:
        """Drain up to ``limit`` visible items in one call.

        Returns ``(item, wait)`` pairs in pop order, where ``wait`` is each
        item's residency time (what ``last_pop_wait`` would have reported).
        Statistics are updated exactly as ``limit`` successive
        :meth:`pop_ready` calls would have updated them; subclasses override
        this with a fused loop so the per-cycle bulk consumers (decode/commit
        domain intake, the execution clusters' writeback-side drains) pay the
        bookkeeping once per batch instead of once per item.
        """
        popped: List[Tuple[Any, float]] = []
        while limit > 0:
            item = self.pop_ready(time)
            if item is None:
                break
            popped.append((item, self.last_pop_wait))
            limit -= 1
        return popped

    def peek(self, time: float) -> Any:  # pragma: no cover - overridden
        """The next consumable item without removing it."""
        raise NotImplementedError

    def pop(self, time: float) -> Any:  # pragma: no cover - overridden
        """Remove and return the next consumable item."""
        raise NotImplementedError

    def flush(self, predicate: Optional[Callable[[Any], bool]] = None) -> int:
        """Drop entries matching ``predicate`` (all entries when None)."""
        raise NotImplementedError  # pragma: no cover

    def items(self) -> Iterable[Any]:  # pragma: no cover - overridden
        """The queued items, oldest first."""
        raise NotImplementedError


class SyncQueue(Channel):
    """A buffer between stages that share a clock (plain pipeline queue).

    Items are visible to the consumer as soon as they are pushed; because the
    processor ticks stages in reverse pipeline order, an item pushed on edge
    *n* is consumed at the earliest on edge *n+1*, modelling a conventional
    pipeline register with no extra latency.
    """

    counts_as_fifo = False

    def __init__(self, name: str, capacity: int) -> None:
        super().__init__(name, capacity)
        self._entries: Deque[Tuple[Any, float]] = deque()

    @property
    def occupancy(self) -> int:
        """Number of buffered items."""
        return len(self._entries)

    def can_push(self, time: float) -> bool:
        """True while the queue has free capacity."""
        return len(self._entries) < self.capacity

    def free_slots(self, time: float) -> int:
        """Free capacity (same-domain queues have no hidden slots)."""
        return self.capacity - len(self._entries)

    def push(self, item: Any, time: float) -> None:
        """Append one item (raises when full)."""
        entries = self._entries
        if len(entries) >= self.capacity:
            raise OverflowError(f"push into full channel {self.name!r}")
        entries.append((item, time))
        self.push_count += 1

    def push_granted(self, item: Any, time: float) -> None:
        """Append one item (capacity already granted by ``can_push``)."""
        self._entries.append((item, time))
        self.push_count += 1

    def can_pop(self, time: float) -> bool:
        """True while any item is buffered (same-domain: no sync delay)."""
        return bool(self._entries)

    def peek(self, time: float) -> Any:
        """The oldest item without removing it."""
        if not self._entries:
            raise LookupError(f"peek on empty channel {self.name!r}")
        return self._entries[0][0]

    def pop(self, time: float) -> Any:
        """Remove and return the oldest item."""
        if not self._entries:
            raise LookupError(f"pop on empty channel {self.name!r}")
        item, pushed_at = self._entries.popleft()
        wait = time - pushed_at
        if wait < 0.0:
            wait = 0.0
        self.last_pop_wait = wait
        self.total_wait += wait
        self.pop_count += 1
        return item

    def sample_occupancy(self) -> None:
        """Record the current occupancy (one sample per consumer cycle)."""
        self.occupancy_samples += 1
        self.occupancy_accum += len(self._entries)

    def pop_ready(self, time: float) -> Any:
        """The oldest item, or None when empty (fused can_pop + pop)."""
        entries = self._entries
        if not entries:
            return None
        item, pushed_at = entries.popleft()
        wait = time - pushed_at
        if wait < 0.0:
            wait = 0.0
        self.last_pop_wait = wait
        self.total_wait += wait
        self.pop_count += 1
        return item

    def pop_bulk(self, time: float, limit: int) -> List[Tuple[Any, float]]:
        """Drain up to ``limit`` items with batched statistics bookkeeping."""
        entries = self._entries
        if not entries:
            return []
        if limit > len(entries):
            limit = len(entries)
        popped: List[Tuple[Any, float]] = []
        append = popped.append
        popleft = entries.popleft
        wait = self.last_pop_wait
        for _ in range(limit):
            item, pushed_at = popleft()
            wait = time - pushed_at
            if wait < 0.0:
                wait = 0.0
            # accumulate per item (same float-summation order as pop_ready)
            self.total_wait += wait
            append((item, wait))
        self.last_pop_wait = wait
        self.pop_count += limit
        return popped

    def flush(self, predicate: Optional[Callable[[Any], bool]] = None) -> int:
        """Drop entries matching ``predicate`` (all entries when it is None)."""
        if predicate is None:
            dropped = len(self._entries)
            self._entries.clear()
        else:
            kept = [(i, t) for (i, t) in self._entries if not predicate(i)]
            dropped = len(self._entries) - len(kept)
            self._entries = deque(kept)
        self.flush_count += dropped
        return dropped

    def items(self) -> List[Any]:
        """The buffered items, oldest first."""
        return [item for item, _ in self._entries]
