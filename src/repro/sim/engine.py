"""General-purpose event-driven simulation engine.

This is the Python equivalent of the C engine sketched in Figure 4 of the
paper: an event queue plus a global timer.  It can simulate purely
asynchronous systems, purely clocked systems (via periodic events -- one per
clock domain) and mixtures of the two, which is exactly what the GALS
processor model needs.

Typical use::

    engine = SimulationEngine()
    engine.schedule_periodic(start=0.5, period=2.0, callback=clock1_logic)
    engine.schedule_periodic(start=1.0, period=3.0, callback=clock2_logic)
    engine.schedule_periodic(start=0.0, period=2.5, callback=clock3_logic)
    engine.run(until=100.0)

Fast path
---------

A GALS run consists almost entirely of a handful of periodic clock-edge
events; one-shot events are rare.  The engine therefore keeps the periodic
events on a *clock wheel* -- a small list of chain records, one per clock,
each holding the chain's next edge time -- and merges the general-purpose
heap (one-shots, aperiodic events) into it only when the heap is non-empty.
Advancing a clock is then one ``min()`` over the wheel plus a float add,
instead of a heap pop, an ``Event`` allocation and a heap push per edge.

The wheel segment loop itself lives in the :mod:`repro.kernel` package
(``run_wheel``): the default is the pure-Python reference, and an optional
ahead-of-time compiled backend can be selected per engine (``kernel=``) or
through ``REPRO_BACKEND`` / ``ProcessorConfig.backend``.  Both backends are
bit-identical by contract.  The run-loop state the kernel touches per event
is held in single-element list cells (``_stop``, ``_events``, ``_current``,
``_wheel_state``) so a compiled loop needs no Python attribute writes on the
per-event path; ``_now`` stays a plain attribute because the pipeline's edge
closures read ``engine._now`` directly.

Edge times are produced by the same repeated ``time += period`` float
addition the generic heap path uses, so the two paths are bit-identical:
identical seeds produce identical event orders, timestamps, and therefore
identical ``SimulationResult`` statistics (``use_wheel=False`` forces the
generic path; a regression test asserts the equivalence).
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, Iterable, List, Optional

from .event import (CHAIN_CALLBACK, CHAIN_CANCELLED, CHAIN_HANDLE, CHAIN_NAME,
                    CHAIN_PARAM, CHAIN_PERIOD, CHAIN_PRIORITY, CHAIN_SEQ,
                    CHAIN_TIME, Event, SimulationError, _SEQUENCE)

#: Compact the heap once at least this many cancelled events are rotting in it
#: (and they make up the majority of the queue).
_COMPACT_THRESHOLD = 64


class SimulationEngine:
    """Discrete-event simulator with support for periodic (clock) events.

    Time is a float in nanoseconds by convention throughout the library,
    although the engine itself is unit-agnostic.

    ``use_wheel=False`` disables the clock-wheel fast path and schedules
    periodic events through the generic heap (the seed engine's behaviour);
    both paths are deterministic and produce identical simulations.

    ``kernel`` selects the hot-core implementation running the wheel segments
    (a :class:`repro.kernel.Kernel`); None resolves the default backend
    (``REPRO_BACKEND`` honoured, pure-Python reference otherwise).
    """

    def __init__(self, use_wheel: bool = True, kernel=None) -> None:
        #: generic heap of (time, priority, seq, event) tuples
        self._queue: List[tuple] = []
        #: clock wheel: one chain record per periodic event (see event.py)
        self._wheel: List[list] = []
        self._use_wheel = use_wheel
        self._now: float = 0.0
        self._running: bool = False
        self._cancelled_pending: int = 0
        # Run-loop state shared with the kernel as single-element list cells:
        # events processed, stop request, chain currently firing, and the
        # wheel membership version (bumped on every wheel change; lets the
        # run loop detect mid-run schedule/cancel of periodic chains even
        # when the wheel length is unchanged).
        self._events: List[int] = [0]
        self._stop: List[bool] = [False]
        self._current: List[Optional[list]] = [None]
        self._wheel_state: List[int] = [0]
        #: the global event sequence counter (shared with the kernel loop,
        #: which draws fresh seqs for rescheduled chain occurrences)
        self._sequence = _SEQUENCE
        if kernel is None:
            from ..kernel import get_kernel
            kernel = get_kernel()
        self._kernel = kernel
        self._run_wheel = kernel.run_wheel

    # ------------------------------------------------------------------ time
    @property
    def now(self) -> float:
        """Current simulation time."""
        return self._now

    @property
    def events_processed(self) -> int:
        """Number of events executed so far."""
        return self._events[0]

    @property
    def kernel_backend(self) -> str:
        """Name of the kernel backend running this engine's wheel segments."""
        return self._kernel.name

    @property
    def pending_events(self) -> int:
        """Number of live events waiting to fire (cancelled events excluded)."""
        live_chains = sum(1 for chain in self._wheel
                          if not chain[CHAIN_CANCELLED])
        return len(self._queue) - self._cancelled_pending + live_chains

    # ------------------------------------------------------------- scheduling
    def schedule(
        self,
        time: float,
        callback: Callable[[Any], None],
        param: Any = None,
        priority: int = 0,
        name: str = "",
    ) -> Event:
        """Schedule a one-shot event at absolute time ``time``."""
        if callback is None:
            raise SimulationError(
                f"cannot schedule event {name!r} without a callback")
        if time < self._now:
            raise SimulationError(
                f"cannot schedule event at {time} before current time {self._now}"
            )
        event = Event(time=time, priority=priority, callback=callback,
                      param=param, name=name)
        event._cancel_hook = self._note_cancelled
        heapq.heappush(self._queue, (time, priority, event.seq, event))
        return event

    def schedule_after(
        self,
        delay: float,
        callback: Callable[[Any], None],
        param: Any = None,
        priority: int = 0,
        name: str = "",
    ) -> Event:
        """Schedule a one-shot event ``delay`` time units from now."""
        if delay < 0:
            raise SimulationError(f"negative delay {delay}")
        return self.schedule(self._now + delay, callback, param, priority, name)

    def schedule_periodic(
        self,
        start: float,
        period: float,
        callback: Callable[[Any], None],
        param: Any = None,
        priority: int = 0,
        name: str = "",
    ) -> Event:
        """Schedule a periodic event -- the building block for clock domains.

        The first occurrence happens at absolute time ``start``; afterwards the
        event re-schedules itself every ``period`` time units until cancelled.
        The returned handle refers to the chain's next occurrence; cancelling
        it stops the whole chain.  To stop an already-running periodic chain
        use :meth:`cancel_chain` with the event name.
        """
        if callback is None:
            raise SimulationError(
                f"cannot schedule periodic event {name!r} without a callback")
        if period <= 0:
            raise SimulationError(f"period must be positive, got {period}")
        if start < self._now:
            raise SimulationError(
                f"cannot start periodic event at {start} before now {self._now}"
            )
        event = Event(time=start, priority=priority, callback=callback,
                      param=param, period=period, name=name)
        if self._use_wheel:
            chain = [start, priority, event.seq, callback, param, period,
                     name, event, False]
            event._chain = chain
            self._wheel.append(chain)
            self._wheel_state[0] += 1
        else:
            event._cancel_hook = self._note_cancelled
            heapq.heappush(self._queue, (start, priority, event.seq, event))
        return event

    def next_chain_time(self, name: str) -> Optional[float]:
        """Pending fire time of the live periodic chain named ``name``.

        Returns the earliest pending occurrence over both scheduler paths
        (clock wheel and generic heap), or ``None`` when no live event with
        that name is pending.  Used by mid-run DVFS retiming to anchor a
        domain's new clock schedule on the edge that is already in flight.
        """
        best: Optional[float] = None
        for chain in self._wheel:
            if chain[CHAIN_NAME] == name and not chain[CHAIN_CANCELLED]:
                time = chain[CHAIN_TIME]
                if best is None or time < best:
                    best = time
        for time, _, _, event in self._queue:
            if event.name == name and not event.cancelled:
                if best is None or time < best:
                    best = time
        return best

    def cancel_chain(self, name: str) -> int:
        """Cancel every pending event whose name matches ``name``.

        Returns the number of events cancelled.  Used to stop clock domains.
        The chain occurrence currently firing is not pending and therefore not
        cancelled (matching the generic path, where the firing event has
        already been popped off the queue).
        """
        count = 0
        current = self._current[0]
        for chain in self._wheel:
            if (chain[CHAIN_NAME] == name and not chain[CHAIN_CANCELLED]
                    and chain is not current):
                chain[CHAIN_HANDLE].cancel()
                count += 1
        self._prune_wheel()
        for _, _, _, event in self._queue:
            if event.name == name and not event.cancelled:
                event.cancel()
                count += 1
        return count

    # ----------------------------------------------- cancelled-event plumbing
    def _note_cancelled(self, _event: Event) -> None:
        """Cancel hook for heap events: track rot, compact past a threshold."""
        self._cancelled_pending += 1
        if (self._cancelled_pending >= _COMPACT_THRESHOLD
                and self._cancelled_pending * 2 > len(self._queue)):
            self._compact()

    def _compact(self) -> None:
        """Drop cancelled events from the heap instead of letting them rot.

        In place: ``run()``/``step()`` hold direct references to the list.
        """
        self._queue[:] = [entry for entry in self._queue
                          if not entry[3].cancelled]
        heapq.heapify(self._queue)
        self._cancelled_pending = 0

    def _prune_wheel(self) -> None:
        """Remove cancelled chains (except the one currently firing)."""
        current = self._current[0]
        kept = [chain for chain in self._wheel
                if not chain[CHAIN_CANCELLED] or chain is current]
        if len(kept) != len(self._wheel):
            self._wheel[:] = kept
            self._wheel_state[0] += 1

    def _discard_chain(self, chain: list) -> None:
        """Remove one chain from the wheel by identity (it may be gone
        already if a callback pruned it via cancel_chain)."""
        wheel = self._wheel
        for index in range(len(wheel)):
            if wheel[index] is chain:
                del wheel[index]
                self._wheel_state[0] += 1
                return

    # ------------------------------------------------------------------- run
    def step(self) -> Optional[Event]:
        """Execute the single next non-cancelled event.  Returns it, or None."""
        queue = self._queue
        wheel = self._wheel
        while True:
            chain = None
            if wheel:
                chain = min(wheel)
                if chain[CHAIN_CANCELLED]:
                    self._discard_chain(chain)
                    continue
            head = None
            while queue:
                head = queue[0]
                if head[3].cancelled:
                    heapq.heappop(queue)
                    self._cancelled_pending -= 1
                    head = None
                    continue
                break
            if chain is None and head is None:
                return None
            if chain is not None and (
                    head is None
                    or (chain[0], chain[1], chain[2]) < (head[0], head[1], head[2])):
                return self._fire_chain(chain)
            heapq.heappop(queue)
            return self._fire_heap_event(head[3])

    def _fire_chain(self, chain: list) -> Event:
        time = chain[CHAIN_TIME]
        if time < self._now:
            raise SimulationError("event queue corrupted: time went backwards")
        self._now = time
        self._current[0] = chain
        chain[CHAIN_CALLBACK](chain[CHAIN_PARAM])
        self._current[0] = None
        self._events[0] += 1
        handle = chain[CHAIN_HANDLE]
        handle.time = time
        if chain[CHAIN_CANCELLED]:
            self._discard_chain(chain)
        else:
            # Fresh (seq, time) for the next occurrence, allocated after the
            # callback -- exactly when the generic path allocates the
            # rescheduled event -- so tie-breaking matches bit for bit.
            chain[CHAIN_SEQ] = next(_SEQUENCE)
            chain[CHAIN_TIME] = time + chain[CHAIN_PERIOD]
            handle.seq = chain[CHAIN_SEQ]
        return handle

    def _fire_heap_event(self, event: Event) -> Event:
        if event.time < self._now:
            raise SimulationError("event queue corrupted: time went backwards")
        # The event left the heap: a cancel() from here on must not count
        # toward the heap's cancelled-rot bookkeeping.
        event._cancel_hook = None
        self._now = event.time
        event.callback(event.param)
        self._events[0] += 1
        if event.period is not None and event.period > 0.0 and not event.cancelled:
            # Re-arm the *same* event object (fresh time and seq, allocated
            # after the callback exactly like the wheel path does), so the
            # handle returned by schedule_periodic stays live: cancelling it
            # stops the chain on both scheduler paths.
            event.time = event.time + event.period
            event.seq = next(_SEQUENCE)
            event._cancel_hook = self._note_cancelled
            heapq.heappush(self._queue,
                           (event.time, event.priority, event.seq, event))
        return event

    def run(
        self,
        until: Optional[float] = None,
        max_events: Optional[int] = None,
        stop_condition: Optional[Callable[[], bool]] = None,
    ) -> float:
        """Run the simulation.

        Parameters
        ----------
        until:
            Absolute time at which to stop (events at exactly ``until`` are
            still processed).  ``None`` runs until the queue drains.
        max_events:
            Safety limit on the number of events processed in this call.
        stop_condition:
            Callable evaluated after every event; simulation stops when it
            returns True.  Used to stop once a processor has committed the
            requested number of instructions.

        Returns the simulation time at which the run stopped.

        Wheel segments (periodic events only, no pending one-shots) are
        delegated to the selected kernel backend's ``run_wheel``; the generic
        heap path interleaves through :meth:`step` exactly as before.
        """
        self._running = True
        stop = self._stop
        stop[0] = False
        processed = 0
        queue = self._queue
        wheel = self._wheel
        run_wheel = self._run_wheel
        # Hoisted sentinels: "no limit" becomes +inf so the per-event checks
        # are single float comparisons with no None tests.
        horizon = float("inf") if until is None else until
        event_limit = float("inf") if max_events is None else max_events
        try:
            while not stop[0]:
                if not queue and wheel:
                    # ---- clock-wheel fast path: periodic events only ----
                    finished, processed = run_wheel(
                        self, horizon, until, stop_condition, max_events,
                        processed)
                    if finished:
                        return self._now
                else:
                    # ---- general path: one-shots pending, or wheel empty ----
                    next_time = self._peek_time()
                    if next_time is None:
                        break
                    if next_time > horizon:
                        self._now = until
                        break
                    if self.step() is None:
                        break
                    processed += 1
                    if stop_condition is not None and stop_condition():
                        break
                    if processed >= event_limit:
                        break
        finally:
            self._running = False
        return self._now

    def stop(self) -> None:
        """Request the current :meth:`run` call to stop after the current event."""
        self._stop[0] = True

    def _peek_time(self) -> Optional[float]:
        """Time of the next non-cancelled event, or None if none is pending."""
        queue = self._queue
        while queue and queue[0][3].cancelled:
            heapq.heappop(queue)
            self._cancelled_pending -= 1
        best: Optional[float] = queue[0][0] if queue else None
        for chain in self._wheel:
            if not chain[CHAIN_CANCELLED]:
                time = chain[CHAIN_TIME]
                if best is None or time < best:
                    best = time
        return best

    # ------------------------------------------------------------------ misc
    def drain(self) -> Iterable[Event]:
        """Remove and yield all remaining events without executing them."""
        remaining: List[Event] = []
        while self._queue:
            _, _, _, event = heapq.heappop(self._queue)
            event._cancel_hook = None   # no longer queued: detach bookkeeping
            if not event.cancelled:
                remaining.append(event)
        self._cancelled_pending = 0
        for chain in self._wheel:
            handle = chain[CHAIN_HANDLE]
            handle._chain = None
            if not chain[CHAIN_CANCELLED]:
                handle.time = chain[CHAIN_TIME]
                handle.seq = chain[CHAIN_SEQ]
                remaining.append(handle)
        if self._wheel:
            self._wheel.clear()
            self._wheel_state[0] += 1
        remaining.sort(key=lambda e: (e.time, e.priority, e.seq))
        yield from remaining

    def reset(self) -> None:
        """Clear the queue and reset time to zero."""
        for _, _, _, event in self._queue:
            event._cancel_hook = None
        for chain in self._wheel:
            chain[CHAIN_HANDLE]._chain = None
        self._queue.clear()
        self._wheel.clear()
        self._wheel_state[0] += 1
        self._now = 0.0
        self._events[0] = 0
        self._stop[0] = False
        self._cancelled_pending = 0
        self._current[0] = None
