"""Event-driven wakeup: waiter lists, ready list, and scan/event parity.

The event scheme (per-physical-register waiter lists + an age-ordered
per-queue ready list) must produce *bit-identical* simulations to the legacy
poll-based scan -- same issue decisions, same telemetry, same energy.  These
tests pin the mechanism (linking, wakeup on writeback, lazy unlink on squash,
ready-list age order, the push-invalidated ready gate) and the end-to-end
contract: differential full runs across topologies, controller scenarios,
branch-recovery-heavy random programs, and scripted mid-run ``retime_domain``
calls that land between a producer's writeback and the consumer's issue.
"""

from dataclasses import asdict

import pytest

from repro.core.processor import Processor
from repro.core.scenario import run_scenario
from repro.isa.instructions import InstructionClass
from repro.isa.trace import TraceInstruction
from repro.uarch.instruction import DynamicInstruction
from repro.uarch.issue_queue import (SCHEME_EVENT, SCHEME_SCAN, IssueQueue)
from repro.uarch.regfile import PhysicalRegisterFile
from repro.workloads.registry import build_workload

SMALL = 500


def make_instr(opclass=InstructionClass.INT_ALU, sources=()):
    trace = TraceInstruction(index=0, pc=0x400000, opclass=opclass, dest=1,
                             sources=tuple(sources))
    return DynamicInstruction(trace, epoch=0)


def no_forwarding(producer, consumer):
    return 0.0


# ------------------------------------------------------------ queue mechanics
def test_unknown_wakeup_scheme_rejected():
    with pytest.raises(ValueError, match="unknown wakeup scheme"):
        IssueQueue("iq", capacity=4, scheme="psychic")


def test_event_dispatch_requires_the_regfile():
    queue = IssueQueue("iq", capacity=4, domain_name="integer",
                       scheme=SCHEME_EVENT)
    with pytest.raises(ValueError, match="needs the regfile"):
        queue.dispatch(make_instr())


def test_dispatch_links_waiters_and_writeback_wakes():
    regfile = PhysicalRegisterFile()
    queue = IssueQueue("iq", capacity=8, domain_name="integer",
                       scheme=SCHEME_EVENT)
    pending = regfile.allocate(for_fp=False)
    waiting = make_instr()
    waiting.phys_sources = (pending, 3)        # one pending, one arch-ready
    queue.dispatch(waiting, regfile)
    assert waiting.pending_ops == 1
    assert waiting.wakeup_queue is queue
    assert regfile._registers[pending].waiters == [waiting]
    assert queue._ready == []                  # not woken yet
    assert queue.ready_instructions(0.0, regfile, no_forwarding, 4) == []

    regfile.mark_ready(pending, 5.0, "integer")
    assert waiting.pending_ops == 0
    assert regfile._registers[pending].waiters == []
    assert queue._ready == [waiting]
    assert queue.ready_instructions(2.0, regfile, no_forwarding, 4) == []
    assert queue.ready_instructions(5.0, regfile, no_forwarding, 4) == [waiting]


def test_no_pending_operands_goes_straight_to_the_ready_list():
    regfile = PhysicalRegisterFile()
    queue = IssueQueue("iq", capacity=8, domain_name="integer",
                       scheme=SCHEME_EVENT)
    instr = make_instr()
    instr.phys_sources = (3,)                  # architectural, always ready
    queue.dispatch(instr, regfile)
    assert queue._ready == [instr]
    assert queue.ready_instructions(0.0, regfile, no_forwarding, 4) == [instr]


def test_push_ready_keeps_age_order_and_invalidates_the_gate():
    queue = IssueQueue("iq", capacity=8, domain_name="integer",
                       scheme=SCHEME_EVENT)
    a, b, c = make_instr(), make_instr(), make_instr()   # ascending seq
    queue.ready_gate = 99.0
    for instr in (c, a, b):                    # writeback order != age order
        queue.push_ready(instr)
    assert queue._ready == [a, b, c]
    assert queue.ready_gate == -1.0            # a push can add an earlier entry
    assert all(i.wakeup_after == -1.0 for i in (a, b, c))


def test_squashed_waiter_is_skipped_on_writeback():
    regfile = PhysicalRegisterFile()
    queue = IssueQueue("iq", capacity=8, domain_name="integer",
                       scheme=SCHEME_EVENT)
    pending = regfile.allocate(for_fp=False)
    older = make_instr()
    older.phys_sources = (pending,)
    wrong_path = make_instr()
    wrong_path.phys_sources = (pending,)
    queue.dispatch(older, regfile)
    queue.dispatch(wrong_path, regfile)
    squashed = queue.squash_younger_than(older.seq)
    assert squashed == [wrong_path] and wrong_path.squashed
    # the waiter link survives the squash (lazy unlink) ...
    assert wrong_path in regfile._registers[pending].waiters
    regfile.mark_ready(pending, 4.0, "integer")
    # ... but the writeback drops it without a wakeup
    assert queue._ready == [older]
    assert regfile._registers[pending].waiters == []


def test_squash_drops_ready_list_entries():
    regfile = PhysicalRegisterFile()
    queue = IssueQueue("iq", capacity=8, domain_name="integer",
                       scheme=SCHEME_EVENT)
    instrs = [make_instr() for _ in range(3)]
    for instr in instrs:
        instr.phys_sources = ()
        queue.dispatch(instr, regfile)
    assert queue._ready == instrs
    queue.squash_younger_than(instrs[0].seq)
    assert queue._ready == [instrs[0]]
    assert queue._entries == [instrs[0]]


def test_freeing_a_register_clears_stale_waiters():
    regfile = PhysicalRegisterFile()
    index = regfile.allocate(for_fp=False)
    leftover = make_instr()
    leftover.squashed = True
    regfile._registers[index].waiters.append(leftover)
    regfile.free(index)
    assert regfile._registers[index].waiters == []


def test_ready_gate_suppresses_passes_until_the_visibility_horizon():
    regfile = PhysicalRegisterFile()
    queue = IssueQueue("iq", capacity=8, domain_name="integer",
                       scheme=SCHEME_EVENT)
    pending = regfile.allocate(for_fp=False)
    instr = make_instr()
    instr.phys_sources = (pending,)
    queue.dispatch(instr, regfile)
    regfile.mark_ready(pending, 10.0, "fp")    # cross-domain producer

    def fwd(producer, consumer):
        return 3.0

    assert queue.ready_instructions(5.0, regfile, fwd, 4) == []
    assert queue.ready_gate == pytest.approx(13.0)   # 10.0 ready + 3.0 fwd
    before = queue.wakeup_searches
    assert queue.ready_instructions(12.0, regfile, fwd, 4) == []
    assert queue.wakeup_searches == before     # gated: no entry examined
    assert queue.ready_instructions(13.0, regfile, fwd, 4) == [instr]


def test_event_and_scan_make_identical_selections():
    def build(scheme):
        regfile = PhysicalRegisterFile()
        queue = IssueQueue("iq", capacity=8, domain_name="integer",
                           scheme=scheme)
        pending = regfile.allocate(for_fp=False)
        blocked = make_instr()
        blocked.phys_sources = (pending,)
        awake = [make_instr() for _ in range(3)]
        for instr in [blocked, *awake]:
            if instr is not blocked:
                instr.phys_sources = (3,)
            queue.dispatch(instr, regfile)
        regfile.mark_ready(pending, 6.0, "fp")
        return regfile, queue, blocked, awake

    def fwd(producer, consumer):
        return 2.0

    picks = {}
    for scheme in (SCHEME_EVENT, SCHEME_SCAN):
        regfile, queue, blocked, awake = build(scheme)
        window = [blocked, *awake]             # dispatch (age) order
        rounds = []
        for now in (0.0, 7.0, 8.0):
            rounds.append([window.index(i) for i in
                           queue.ready_instructions(now, regfile, fwd, 2)])
        picks[scheme] = rounds
    assert picks[SCHEME_EVENT] == picks[SCHEME_SCAN]
    assert picks[SCHEME_EVENT][0] == [1, 2]    # oldest awake entries first


# ------------------------------------------------------- differential full runs
def _differential(scenario, instructions=SMALL, **overrides):
    event = run_scenario(scenario, num_instructions=instructions,
                         config={"wakeup_scheme": "event"}, **overrides)
    scan = run_scenario(scenario, num_instructions=instructions,
                        config={"wakeup_scheme": "scan"}, **overrides)
    assert asdict(event.result) == asdict(scan.result)
    return event.result


@pytest.mark.parametrize("scenario", [
    "base",                    # synchronous: no forwarding latency at all
    "gals5",                   # the paper's 5-domain machine
    "fem3",                    # 3-domain split
    "memsplit2",               # 2-domain memory split
    "dotprod-gals5",           # assembled kernel workload
])
def test_event_wakeup_is_bit_identical_to_scan(scenario):
    result = _differential(scenario)
    assert result.committed_instructions > 0


def test_event_wakeup_bit_identical_on_long_program_with_recoveries():
    result = _differential("gals5", instructions=2500)
    # the differential is only meaningful if the run exercised branch
    # recoveries (waiter unlink on squash) -- the perl workload does
    assert result.recoveries > 0
    assert result.branch_misprediction_rate > 0.0


def test_event_wakeup_bit_identical_under_online_dvfs_controller():
    # the occupancy controller retimes domains mid-run: cached visibility
    # prices must go stale identically in both schemes
    result = _differential("gals5-perl-occupancy", instructions=800)
    assert result.dvfs_trace                  # the controller actually acted


# ------------------------------------------- scripted mid-run retime parity
def _scripted_retime_run(scheme, retimes, instructions=SMALL):
    """One gals5 run with ``retime_domain`` calls at scripted times.

    The retime callbacks run at priority 8, after the execution units'
    clock edges at the same instant -- so a retime can land *between* a
    producer's writeback and the consumer's issue pass, the window where a
    stale cached ``wakeup_after`` must behave identically in both schemes.
    """
    from repro.core.config import DEFAULT_CONFIG

    trace, workload = build_workload("perl", instructions, seed=1)
    machine = Processor(trace,
                        config=DEFAULT_CONFIG.with_changes(
                            wakeup_scheme=scheme),
                        workload=workload, topology="gals5")

    def make_retime(domain, slowdown):
        def do_retime(_):
            machine.retime_domain(domain,
                                  machine.plan.base_period * slowdown)
        return do_retime

    for at, domain, slowdown in retimes:
        machine.engine.schedule(at, make_retime(domain, slowdown),
                                priority=8, name="retime")
    return machine.run()


def test_mid_run_retime_between_writeback_and_issue_is_scheme_invariant():
    # odd, non-edge-aligned times: the retimes interleave arbitrarily with
    # writebacks and issue passes across all five domains
    retimes = ((23.7, "fp", 1.5), (41.3, "integer", 1.3),
               (67.9, "memory", 1.2), (88.1, "fp", 1.0),
               (104.513, "integer", 1.0))
    event = _scripted_retime_run("event", retimes)
    scan = _scripted_retime_run("scan", retimes)
    assert asdict(event) == asdict(scan)
    # the retimes visibly slowed clocks, so the parity is not vacuous
    assert event.domain_cycles["fp"] < event.domain_cycles["decode"]


def test_mid_run_retime_storm_is_scheme_invariant():
    retimes = tuple((7.0 + 9.77 * i,
                     ("integer", "fp", "memory")[i % 3],
                     (1.4, 1.1, 1.25, 1.0)[i % 4])
                    for i in range(12))
    event = _scripted_retime_run("event", retimes)
    scan = _scripted_retime_run("scan", retimes)
    assert asdict(event) == asdict(scan)
