"""Out-of-order issue queues (instruction windows).

The processor has three issue queues (Table 3): integer (20 entries), floating
point (16) and memory (16).  Each queue holds renamed instructions until their
source operands are ready *and visible in the queue's clock domain*, then
issues the oldest ready instructions to the functional units, up to the issue
width and functional-unit availability.

Queue occupancy is one of the statistics the paper highlights (occupancies go
up in the GALS machine because instructions wait longer for cross-domain
operands); :meth:`IssueQueue.sample_occupancy` feeds those numbers.
"""

from __future__ import annotations

from typing import Callable, Iterable, List, Optional

from .instruction import DynamicInstruction
from .regfile import PhysicalRegisterFile

#: forwarding_latency(producer_domain, consumer_domain) -> extra ns
ForwardingLatency = Callable[[str, str], float]


class IssueQueue:
    """One instruction window feeding one set of functional units."""

    def __init__(self, name: str, capacity: int, domain_name: str = "") -> None:
        if capacity <= 0:
            raise ValueError("issue queue capacity must be positive")
        self.name = name
        self.capacity = capacity
        self.domain_name = domain_name
        self._entries: List[DynamicInstruction] = []
        # statistics
        self.dispatches = 0
        self.issues = 0
        self.wakeup_searches = 0
        self.occupancy_accum = 0
        self.occupancy_samples = 0
        self.full_stalls = 0

    # ----------------------------------------------------------------- state
    @property
    def occupancy(self) -> int:
        return len(self._entries)

    @property
    def is_full(self) -> bool:
        return len(self._entries) >= self.capacity

    @property
    def mean_occupancy(self) -> float:
        if self.occupancy_samples == 0:
            return 0.0
        return self.occupancy_accum / self.occupancy_samples

    def sample_occupancy(self) -> None:
        self.occupancy_samples += 1
        self.occupancy_accum += len(self._entries)

    def __iter__(self) -> Iterable[DynamicInstruction]:
        return iter(self._entries)

    # ------------------------------------------------------------ operations
    def dispatch(self, instr: DynamicInstruction) -> None:
        """Insert a renamed instruction into the window."""
        if self.is_full:
            self.full_stalls += 1
            raise OverflowError(f"issue queue {self.name!r} is full")
        self._entries.append(instr)
        self.dispatches += 1

    def ready_instructions(
        self,
        now: float,
        regfile: PhysicalRegisterFile,
        forwarding_latency: ForwardingLatency,
        limit: int,
    ) -> List[DynamicInstruction]:
        """Oldest-first list of instructions whose operands are all visible.

        This models the wakeup/select CAM search: every entry is examined
        (counted as wakeup activity for the power model), and up to ``limit``
        ready entries are returned in age order.
        """
        if limit <= 0:
            return []
        ready: List[DynamicInstruction] = []
        for instr in sorted(self._entries, key=lambda i: i.seq):
            self.wakeup_searches += 1
            operands_ready = all(
                regfile.is_ready(phys, now, self.domain_name, forwarding_latency)
                for phys in instr.phys_sources
            )
            if operands_ready:
                ready.append(instr)
                if len(ready) >= limit:
                    break
        return ready

    def remove(self, instr: DynamicInstruction) -> None:
        """Remove an instruction that has been issued."""
        self._entries.remove(instr)
        self.issues += 1

    def squash_younger_than(self, branch_seq: int) -> List[DynamicInstruction]:
        """Drop wrong-path instructions after a misprediction."""
        squashed = [i for i in self._entries if i.seq > branch_seq]
        if squashed:
            self._entries = [i for i in self._entries if i.seq <= branch_seq]
            for instr in squashed:
                instr.squashed = True
        return squashed
