"""Two-pass assembler for the small RISC ISA.

Syntax (one instruction or label per line, ``#`` starts a comment)::

    main:
        li   r1, 0          # accumulator
        li   r2, 100        # loop bound
    loop:
        lw   r3, 0(r4)
        add  r1, r1, r3
        addi r4, r4, 8
        addi r5, r5, 1
        blt  r5, r2, loop
        halt

The assembler exists so example applications and workload kernels can be
written as readable text rather than as instruction-object soup; it is not a
reproduction target itself (the paper used pre-compiled SPEC binaries).
"""

from __future__ import annotations

import re
from typing import List, Optional, Tuple

from .instructions import Instruction, Opcode
from .program import Program
from .registers import parse_reg

_LABEL_RE = re.compile(r"^([A-Za-z_][A-Za-z0-9_]*):\s*(.*)$")
_MEM_OPERAND_RE = re.compile(r"^(-?\d+)\((\w+)\)$")

#: opcode groups by operand shape
_THREE_REG = {Opcode.ADD, Opcode.SUB, Opcode.MUL, Opcode.DIV, Opcode.AND,
              Opcode.OR, Opcode.XOR, Opcode.SLL, Opcode.SRL, Opcode.SLT,
              Opcode.FADD, Opcode.FSUB, Opcode.FMUL, Opcode.FDIV}
_TWO_REG = {Opcode.MOV, Opcode.FMOV, Opcode.CVTIF, Opcode.CVTFI}
_REG_IMM = {Opcode.LI}
_REG_REG_IMM = {Opcode.ADDI}
_LOADS = {Opcode.LW, Opcode.FLW}
_STORES = {Opcode.SW, Opcode.FSW}
_COND_BRANCHES = {Opcode.BEQ, Opcode.BNE, Opcode.BLT, Opcode.BGE}


class AssemblerError(ValueError):
    """Raised on malformed assembly input, with the offending line number."""

    def __init__(self, line_number: int, message: str) -> None:
        super().__init__(f"line {line_number}: {message}")
        self.line_number = line_number


def _split_operands(text: str) -> List[str]:
    return [token.strip() for token in text.split(",") if token.strip()]


def _parse_mem_operand(token: str, line_number: int) -> Tuple[int, int]:
    """Parse 'offset(reg)' into (offset, base register id)."""
    match = _MEM_OPERAND_RE.match(token.replace(" ", ""))
    if not match:
        raise AssemblerError(line_number, f"bad memory operand {token!r}")
    offset = int(match.group(1))
    base = parse_reg(match.group(2))
    return offset, base


def _parse_instruction(mnemonic: str, operand_text: str,
                       line_number: int) -> Instruction:
    try:
        opcode = Opcode(mnemonic.lower())
    except ValueError as exc:
        raise AssemblerError(line_number, f"unknown mnemonic {mnemonic!r}") from exc

    operands = _split_operands(operand_text)

    def expect(count: int) -> None:
        if len(operands) != count:
            raise AssemblerError(
                line_number,
                f"{opcode.value} expects {count} operands, got {len(operands)}")

    if opcode in _THREE_REG:
        expect(3)
        return Instruction(opcode, dest=parse_reg(operands[0]),
                           sources=(parse_reg(operands[1]), parse_reg(operands[2])))
    if opcode in _TWO_REG:
        expect(2)
        return Instruction(opcode, dest=parse_reg(operands[0]),
                           sources=(parse_reg(operands[1]),))
    if opcode in _REG_IMM:
        expect(2)
        return Instruction(opcode, dest=parse_reg(operands[0]),
                           immediate=int(operands[1], 0))
    if opcode in _REG_REG_IMM:
        expect(3)
        return Instruction(opcode, dest=parse_reg(operands[0]),
                           sources=(parse_reg(operands[1]),),
                           immediate=int(operands[2], 0))
    if opcode in _LOADS:
        expect(2)
        offset, base = _parse_mem_operand(operands[1], line_number)
        return Instruction(opcode, dest=parse_reg(operands[0]),
                           sources=(base,), immediate=offset)
    if opcode in _STORES:
        expect(2)
        offset, base = _parse_mem_operand(operands[1], line_number)
        return Instruction(opcode, sources=(parse_reg(operands[0]), base),
                           immediate=offset)
    if opcode in _COND_BRANCHES:
        expect(3)
        return Instruction(opcode,
                           sources=(parse_reg(operands[0]), parse_reg(operands[1])),
                           target_label=operands[2])
    if opcode in (Opcode.J, Opcode.JAL):
        expect(1)
        return Instruction(opcode, target_label=operands[0])
    if opcode is Opcode.JR:
        expect(1)
        return Instruction(opcode, sources=(parse_reg(operands[0]),))
    if opcode in (Opcode.HALT, Opcode.NOP):
        if operands:
            raise AssemblerError(line_number, f"{opcode.value} takes no operands")
        return Instruction(opcode)
    raise AssemblerError(line_number, f"unhandled opcode {opcode.value!r}")


def assemble(source: str, name: str = "program") -> Program:
    """Assemble a text program into a :class:`Program`."""
    program = Program(name=name)
    for line_number, raw_line in enumerate(source.splitlines(), start=1):
        line = raw_line.split("#", 1)[0].strip()
        if not line:
            continue
        match = _LABEL_RE.match(line)
        if match:
            label, rest = match.group(1), match.group(2).strip()
            try:
                program.add_label(label)
            except ValueError as exc:
                raise AssemblerError(line_number, str(exc)) from exc
            if not rest:
                continue
            line = rest
        parts = line.split(None, 1)
        mnemonic = parts[0]
        operand_text = parts[1] if len(parts) > 1 else ""
        program.append(_parse_instruction(mnemonic, operand_text, line_number))
    program.validate()
    return program
