"""Stdlib client for the ``repro serve`` JSON API (used by ``repro query``).

The client speaks the three endpoints of
:class:`~repro.serve.service.ResultsService` over :mod:`urllib` -- no
third-party HTTP stack.  :func:`query_scenario` sends the *full canonical
scenario JSON* (not just a name), so the key the service computes is
identical to the key a local ``repro run --cache`` would use, and a hit's
body is byte-identical to ``repro run --json``.  With ``wait`` set it polls
*202 Accepted* replies until the queued computation lands (or the deadline
passes), mirroring a prun-style submit-and-poll loop.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass, field
from typing import Any, Dict, Optional
from urllib.error import HTTPError
from urllib.parse import urlencode
from urllib.request import urlopen

from ..core.scenario import Scenario

__all__ = ["QueryReply", "query_compare", "query_health", "query_scenario",
           "request_json", "scenario_query_url"]


@dataclass
class QueryReply:
    """One service response: HTTP code, raw body, parsed body, headers."""

    code: int
    body: str
    headers: Dict[str, str] = field(default_factory=dict)

    @property
    def payload(self) -> Any:
        """The body parsed as JSON (None when it is not JSON)."""
        try:
            return json.loads(self.body)
        except ValueError:
            return None

    @property
    def status(self) -> str:
        """Service-level status: the X-Repro-Status header when present,
        else the payload's ``status`` field, else ``hit``/``error`` by code.
        """
        if "X-Repro-Status" in self.headers:
            return self.headers["X-Repro-Status"]
        payload = self.payload
        if isinstance(payload, dict) and "status" in payload:
            return str(payload["status"])
        return "hit" if self.code == 200 else "error"

    @property
    def key(self) -> str:
        """The result's cache key (header first, payload fallback)."""
        if "X-Repro-Key" in self.headers:
            return self.headers["X-Repro-Key"]
        payload = self.payload
        if isinstance(payload, dict):
            return str(payload.get("key", ""))
        return ""


def request_json(url: str, timeout: float = 30.0) -> QueryReply:
    """GET one URL, returning the reply whatever the HTTP status code is."""
    try:
        with urlopen(url, timeout=timeout) as response:
            return QueryReply(code=response.status,
                              body=response.read().decode("utf-8"),
                              headers=dict(response.headers))
    except HTTPError as error:
        # 4xx/5xx carry a JSON error body too -- surface it, don't raise
        return QueryReply(code=error.code,
                          body=error.read().decode("utf-8"),
                          headers=dict(error.headers))


def scenario_query_url(base_url: str, scenario: Scenario) -> str:
    """The /scenario URL carrying one scenario's full canonical JSON."""
    query = urlencode({"scenario": scenario.to_json(indent=None)})
    return f"{base_url.rstrip('/')}/scenario?{query}"


def query_health(base_url: str, timeout: float = 30.0) -> QueryReply:
    """GET /health."""
    return request_json(f"{base_url.rstrip('/')}/health", timeout=timeout)


def query_scenario(base_url: str, scenario: Scenario,
                   wait: float = 0.0, poll: float = 0.2,
                   timeout: float = 30.0) -> QueryReply:
    """Query one scenario, optionally polling a 202 until it is served.

    Returns the final reply: 200 with the result JSON body on a hit (or
    once the queued computation lands within ``wait`` seconds), the last
    202 when the deadline passes first, or the 4xx/5xx error reply.
    """
    url = scenario_query_url(base_url, scenario)
    deadline = time.monotonic() + wait
    while True:
        reply = request_json(url, timeout=timeout)
        if reply.code != 202 or time.monotonic() >= deadline:
            return reply
        time.sleep(poll)


def query_compare(base_url: str,
                  params: Optional[Dict[str, Any]] = None,
                  wait: float = 0.0, poll: float = 0.2,
                  timeout: float = 30.0) -> QueryReply:
    """GET /compare with the given query parameters (polling like above)."""
    suffix = f"?{urlencode(params)}" if params else ""
    url = f"{base_url.rstrip('/')}/compare{suffix}"
    deadline = time.monotonic() + wait
    while True:
        reply = request_json(url, timeout=timeout)
        if reply.code != 202 or time.monotonic() >= deadline:
            return reply
        time.sleep(poll)
