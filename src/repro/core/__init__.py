"""Core GALS evaluation framework: configurations, processors, experiments.

This package holds the paper's primary contribution: the side-by-side
synchronous vs. GALS processor models, the clock-domain partitioning, the
multiple-clock / multiple-voltage policies, and the experiment drivers that
regenerate the evaluation figures.
"""

from .config import DEFAULT_CONFIG, ProcessorConfig
from .domains import (DOMAIN_DECODE, DOMAIN_FETCH, DOMAIN_FP, DOMAIN_INTEGER,
                      DOMAIN_MEMORY, GALS_DOMAINS, SYNC_DOMAIN, ClockPlan,
                      pipeline_stage_table, slowdown_plan, uniform_plan)
from .dvfs import (GCC_GALS_1, GCC_GALS_2, GENERIC_SLOWDOWN, IJPEG_SWEEP,
                   PERL_FP_BY_3, POLICIES, SlowdownPolicy, get_policy,
                   recommend_policy)
from .experiments import (DEFAULT_INSTRUCTIONS, DvfsResult, average_energy_increase,
                          average_performance_drop, average_power_saving,
                          average_slip_increase, baseline_comparison,
                          phase_sensitivity, run_pair, run_single,
                          selective_slowdown, slowdown_sweep)
from .metrics import (ComparisonRow, SimulationResult, SimulationStats,
                      arithmetic_mean, compare, geometric_mean)
from .processor import (BASE_PROCESSOR, GALS_PROCESSOR, Processor,
                        build_base_processor, build_gals_processor)

__all__ = [
    "BASE_PROCESSOR",
    "ClockPlan",
    "ComparisonRow",
    "DEFAULT_CONFIG",
    "DEFAULT_INSTRUCTIONS",
    "DOMAIN_DECODE",
    "DOMAIN_FETCH",
    "DOMAIN_FP",
    "DOMAIN_INTEGER",
    "DOMAIN_MEMORY",
    "DvfsResult",
    "GALS_DOMAINS",
    "GALS_PROCESSOR",
    "GCC_GALS_1",
    "GCC_GALS_2",
    "GENERIC_SLOWDOWN",
    "IJPEG_SWEEP",
    "PERL_FP_BY_3",
    "POLICIES",
    "Processor",
    "ProcessorConfig",
    "SimulationResult",
    "SimulationStats",
    "SlowdownPolicy",
    "SYNC_DOMAIN",
    "arithmetic_mean",
    "average_energy_increase",
    "average_performance_drop",
    "average_power_saving",
    "average_slip_increase",
    "baseline_comparison",
    "build_base_processor",
    "build_gals_processor",
    "compare",
    "geometric_mean",
    "get_policy",
    "phase_sensitivity",
    "pipeline_stage_table",
    "recommend_policy",
    "run_pair",
    "run_single",
    "selective_slowdown",
    "slowdown_plan",
    "slowdown_sweep",
    "uniform_plan",
]
