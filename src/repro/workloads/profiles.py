"""Benchmark behaviour profiles (Spec95 / Mediabench substitutes).

The paper evaluates its processors on Spec95 and Mediabench programs run under
SimpleScalar.  Those binaries and traces are not redistributable, so this
reproduction describes each benchmark by the behavioural parameters the
paper's conclusions actually depend on -- branch density and predictability,
floating-point and memory intensity, dependence locality and working-set size
-- and generates synthetic instruction streams from those parameters
(:mod:`repro.workloads.synthetic`).

The parameters encode the specific facts the paper calls out:

* *fpppp* executes roughly one branch per 67 instructions, while most other
  applications have one branch every five to six instructions (Section 5.1);
* *perl* has virtually no floating-point instructions (Section 5.2);
* *ijpeg* has a very low proportion of memory accesses (Section 5.2);
* *gcc* has low instruction bandwidth and essentially no FP (Section 5.2).

The remaining values are representative of the published characterisations of
these suites from the same era.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

SUITE_SPECINT = "specint95"
SUITE_SPECFP = "specfp95"
SUITE_MEDIABENCH = "mediabench"


@dataclass(frozen=True)
class BenchmarkProfile:
    """Statistical description of one benchmark's dynamic behaviour."""

    name: str
    suite: str
    description: str
    #: fraction of dynamic instructions that are conditional branches
    branch_fraction: float
    #: fraction of dynamic instructions that are unconditional jumps/calls
    jump_fraction: float
    #: fraction of static branches that are strongly biased (easy to predict)
    strongly_biased_fraction: float
    #: taken probability of a strongly biased branch
    strong_bias: float
    #: taken probability of a weakly biased branch
    weak_bias: float
    #: fraction of dynamic instructions that are floating point
    fp_fraction: float
    #: of the FP instructions, fraction that are multiplies / divides
    fp_mul_share: float
    fp_div_share: float
    #: fraction of dynamic instructions that are loads / stores
    load_fraction: float
    store_fraction: float
    #: of the integer instructions, fraction that are multiplies
    int_mul_share: float
    #: mean register-dependence distance (instructions) between producer and consumer
    dependence_distance: float
    #: data working-set size in KB (drives D-cache/L2 behaviour)
    working_set_kb: int
    #: typical stride of array accesses in bytes
    access_stride: int
    #: number of static basic blocks (drives I-cache footprint; gcc is large)
    static_blocks: int
    #: average instructions per basic block override (0 = derive from branch_fraction)
    block_length_override: int = 0

    def __post_init__(self) -> None:
        fractions = (self.branch_fraction, self.jump_fraction, self.fp_fraction,
                     self.load_fraction, self.store_fraction)
        if any(f < 0 or f > 1 for f in fractions):
            raise ValueError(f"profile {self.name!r}: fractions must be in [0, 1]")
        total = (self.branch_fraction + self.jump_fraction + self.fp_fraction
                 + self.load_fraction + self.store_fraction)
        if total > 1.0 + 1e-9:
            raise ValueError(
                f"profile {self.name!r}: instruction-mix fractions sum to {total:.3f} > 1")
        if self.working_set_kb <= 0 or self.static_blocks <= 0:
            raise ValueError(f"profile {self.name!r}: sizes must be positive")

    @property
    def int_alu_fraction(self) -> float:
        """Fraction of dynamic instructions that are plain integer ALU ops."""
        return max(0.0, 1.0 - (self.branch_fraction + self.jump_fraction
                               + self.fp_fraction + self.load_fraction
                               + self.store_fraction))

    @property
    def is_integer_benchmark(self) -> bool:
        """True when the FP fraction is negligible (< 5 %)."""
        return self.fp_fraction < 0.05

    @property
    def branches_per_instruction(self) -> float:
        """Control-flow density: branch + jump fraction."""
        return self.branch_fraction + self.jump_fraction

    @property
    def mean_block_length(self) -> int:
        """Average number of instructions per basic block."""
        if self.block_length_override:
            return self.block_length_override
        density = self.branches_per_instruction
        if density <= 0:
            return 40
        return max(2, round(1.0 / density))


def _profile(**kwargs) -> BenchmarkProfile:
    return BenchmarkProfile(**kwargs)


#: The benchmark suite used throughout the reproduction.  Values are
#: representative published characterisations; see the module docstring.
PROFILES: Dict[str, BenchmarkProfile] = {p.name: p for p in [
    # ----------------------------------------------------------- SPECint95
    _profile(name="compress", suite=SUITE_SPECINT,
             description="LZW text compression (SPECint95)",
             branch_fraction=0.17, jump_fraction=0.02,
             strongly_biased_fraction=0.84, strong_bias=0.965, weak_bias=0.68,
             fp_fraction=0.0, fp_mul_share=0.0, fp_div_share=0.0,
             load_fraction=0.24, store_fraction=0.09, int_mul_share=0.01,
             dependence_distance=2.6, working_set_kb=300, access_stride=8,
             static_blocks=40),
    _profile(name="gcc", suite=SUITE_SPECINT,
             description="GNU C compiler (SPECint95); large code footprint, no FP",
             branch_fraction=0.17, jump_fraction=0.04,
             strongly_biased_fraction=0.8, strong_bias=0.955, weak_bias=0.66,
             fp_fraction=0.0, fp_mul_share=0.0, fp_div_share=0.0,
             load_fraction=0.25, store_fraction=0.11, int_mul_share=0.01,
             dependence_distance=2.8, working_set_kb=512, access_stride=16,
             static_blocks=400),
    _profile(name="go", suite=SUITE_SPECINT,
             description="Go-playing program (SPECint95); hard-to-predict branches",
             branch_fraction=0.15, jump_fraction=0.03,
             strongly_biased_fraction=0.68, strong_bias=0.94, weak_bias=0.62,
             fp_fraction=0.0, fp_mul_share=0.0, fp_div_share=0.0,
             load_fraction=0.26, store_fraction=0.08, int_mul_share=0.02,
             dependence_distance=3.0, working_set_kb=256, access_stride=16,
             static_blocks=220),
    _profile(name="ijpeg", suite=SUITE_SPECINT,
             description="JPEG compression (SPECint95); few memory accesses",
             branch_fraction=0.10, jump_fraction=0.02,
             strongly_biased_fraction=0.88, strong_bias=0.97, weak_bias=0.7,
             fp_fraction=0.0, fp_mul_share=0.0, fp_div_share=0.0,
             load_fraction=0.16, store_fraction=0.06, int_mul_share=0.06,
             dependence_distance=3.4, working_set_kb=160, access_stride=8,
             static_blocks=60),
    _profile(name="li", suite=SUITE_SPECINT,
             description="Lisp interpreter (SPECint95)",
             branch_fraction=0.19, jump_fraction=0.05,
             strongly_biased_fraction=0.84, strong_bias=0.96, weak_bias=0.68,
             fp_fraction=0.0, fp_mul_share=0.0, fp_div_share=0.0,
             load_fraction=0.28, store_fraction=0.13, int_mul_share=0.0,
             dependence_distance=2.4, working_set_kb=96, access_stride=8,
             static_blocks=120),
    _profile(name="perl", suite=SUITE_SPECINT,
             description="Perl interpreter (SPECint95); virtually no FP",
             branch_fraction=0.18, jump_fraction=0.04,
             strongly_biased_fraction=0.83, strong_bias=0.96, weak_bias=0.68,
             fp_fraction=0.0, fp_mul_share=0.0, fp_div_share=0.0,
             load_fraction=0.27, store_fraction=0.12, int_mul_share=0.01,
             dependence_distance=2.5, working_set_kb=200, access_stride=8,
             static_blocks=180),
    _profile(name="m88ksim", suite=SUITE_SPECINT,
             description="Motorola 88k simulator (SPECint95)",
             branch_fraction=0.16, jump_fraction=0.04,
             strongly_biased_fraction=0.86, strong_bias=0.965, weak_bias=0.7,
             fp_fraction=0.0, fp_mul_share=0.0, fp_div_share=0.0,
             load_fraction=0.22, store_fraction=0.09, int_mul_share=0.01,
             dependence_distance=2.7, working_set_kb=64, access_stride=8,
             static_blocks=150),
    _profile(name="vortex", suite=SUITE_SPECINT,
             description="Object-oriented database (SPECint95)",
             branch_fraction=0.16, jump_fraction=0.05,
             strongly_biased_fraction=0.88, strong_bias=0.97, weak_bias=0.7,
             fp_fraction=0.0, fp_mul_share=0.0, fp_div_share=0.0,
             load_fraction=0.29, store_fraction=0.15, int_mul_share=0.0,
             dependence_distance=2.9, working_set_kb=400, access_stride=32,
             static_blocks=320),
    # ------------------------------------------------------------ SPECfp95
    _profile(name="applu", suite=SUITE_SPECFP,
             description="Parabolic/elliptic PDE solver (SPECfp95)",
             branch_fraction=0.05, jump_fraction=0.01,
             strongly_biased_fraction=0.90, strong_bias=0.97, weak_bias=0.70,
             fp_fraction=0.38, fp_mul_share=0.40, fp_div_share=0.03,
             load_fraction=0.28, store_fraction=0.09, int_mul_share=0.01,
             dependence_distance=4.2, working_set_kb=800, access_stride=8,
             static_blocks=48),
    _profile(name="fpppp", suite=SUITE_SPECFP,
             description="Quantum chemistry (SPECfp95); ~1 branch per 67 instructions",
             branch_fraction=0.012, jump_fraction=0.003,
             strongly_biased_fraction=0.92, strong_bias=0.98, weak_bias=0.72,
             fp_fraction=0.48, fp_mul_share=0.45, fp_div_share=0.04,
             load_fraction=0.30, store_fraction=0.10, int_mul_share=0.0,
             dependence_distance=5.0, working_set_kb=120, access_stride=8,
             static_blocks=16),
    _profile(name="swim", suite=SUITE_SPECFP,
             description="Shallow-water model (SPECfp95); streaming FP",
             branch_fraction=0.04, jump_fraction=0.01,
             strongly_biased_fraction=0.93, strong_bias=0.98, weak_bias=0.72,
             fp_fraction=0.40, fp_mul_share=0.42, fp_div_share=0.01,
             load_fraction=0.30, store_fraction=0.12, int_mul_share=0.0,
             dependence_distance=4.5, working_set_kb=1600, access_stride=8,
             static_blocks=24),
    _profile(name="tomcatv", suite=SUITE_SPECFP,
             description="Mesh generation (SPECfp95)",
             branch_fraction=0.04, jump_fraction=0.01,
             strongly_biased_fraction=0.92, strong_bias=0.98, weak_bias=0.70,
             fp_fraction=0.42, fp_mul_share=0.40, fp_div_share=0.05,
             load_fraction=0.29, store_fraction=0.10, int_mul_share=0.0,
             dependence_distance=4.6, working_set_kb=1200, access_stride=8,
             static_blocks=20),
    # ---------------------------------------------------------- Mediabench
    _profile(name="adpcm", suite=SUITE_MEDIABENCH,
             description="ADPCM speech codec (Mediabench)",
             branch_fraction=0.15, jump_fraction=0.02,
             strongly_biased_fraction=0.78, strong_bias=0.95, weak_bias=0.66,
             fp_fraction=0.0, fp_mul_share=0.0, fp_div_share=0.0,
             load_fraction=0.12, store_fraction=0.05, int_mul_share=0.02,
             dependence_distance=2.2, working_set_kb=24, access_stride=4,
             static_blocks=20),
    _profile(name="epic", suite=SUITE_MEDIABENCH,
             description="Image compression with wavelets (Mediabench)",
             branch_fraction=0.10, jump_fraction=0.02,
             strongly_biased_fraction=0.86, strong_bias=0.965, weak_bias=0.68,
             fp_fraction=0.18, fp_mul_share=0.45, fp_div_share=0.02,
             load_fraction=0.24, store_fraction=0.08, int_mul_share=0.04,
             dependence_distance=3.2, working_set_kb=80, access_stride=8,
             static_blocks=40),
    _profile(name="gsm", suite=SUITE_MEDIABENCH,
             description="GSM 06.10 speech codec (Mediabench)",
             branch_fraction=0.11, jump_fraction=0.02,
             strongly_biased_fraction=0.85, strong_bias=0.96, weak_bias=0.68,
             fp_fraction=0.0, fp_mul_share=0.0, fp_div_share=0.0,
             load_fraction=0.20, store_fraction=0.07, int_mul_share=0.10,
             dependence_distance=2.8, working_set_kb=32, access_stride=4,
             static_blocks=36),
    _profile(name="jpeg", suite=SUITE_MEDIABENCH,
             description="JPEG codec (Mediabench)",
             branch_fraction=0.11, jump_fraction=0.02,
             strongly_biased_fraction=0.88, strong_bias=0.97, weak_bias=0.7,
             fp_fraction=0.02, fp_mul_share=0.5, fp_div_share=0.0,
             load_fraction=0.20, store_fraction=0.08, int_mul_share=0.08,
             dependence_distance=3.0, working_set_kb=90, access_stride=8,
             static_blocks=50),
    _profile(name="mpeg2", suite=SUITE_MEDIABENCH,
             description="MPEG-2 video decoder (Mediabench)",
             branch_fraction=0.12, jump_fraction=0.02,
             strongly_biased_fraction=0.86, strong_bias=0.965, weak_bias=0.68,
             fp_fraction=0.04, fp_mul_share=0.5, fp_div_share=0.02,
             load_fraction=0.26, store_fraction=0.09, int_mul_share=0.06,
             dependence_distance=3.1, working_set_kb=350, access_stride=16,
             static_blocks=80),
]}

#: Benchmarks used by the figure-reproduction harness (mirrors the ~12 bars of
#: Figures 5-9).
DEFAULT_BENCHMARKS: Tuple[str, ...] = (
    "compress", "gcc", "go", "ijpeg", "li", "perl",
    "applu", "fpppp", "swim",
    "adpcm", "epic", "mpeg2",
)

#: The three benchmarks the paper's DVFS case studies focus on (Section 5.2).
DVFS_CASE_STUDY_BENCHMARKS: Tuple[str, ...] = ("perl", "ijpeg", "gcc")


def get_profile(name: str) -> BenchmarkProfile:
    """Look up a benchmark profile by name."""
    try:
        return PROFILES[name]
    except KeyError as exc:
        raise KeyError(
            f"unknown benchmark {name!r}; known: {', '.join(sorted(PROFILES))}"
        ) from exc


def profiles_in_suite(suite: str) -> List[BenchmarkProfile]:
    """All profiles belonging to one suite."""
    return [p for p in PROFILES.values() if p.suite == suite]


# --------------------------------------------------------------- phased mixes
#: Phase-schedule kinds understood by the phased trace generator
#: (:mod:`repro.workloads.phased`).
PHASE_STATIC = "static"
PHASE_OSCILLATING = "oscillating"
PHASE_HOTSET = "hotset"

PHASE_KINDS: Tuple[str, ...] = (PHASE_STATIC, PHASE_OSCILLATING, PHASE_HOTSET)


@dataclass(frozen=True)
class PhasedMix:
    """A characterized multi-phase workload mix (the workload-profile table).

    A mix names the regime structure of a phased workload: which base
    workloads (benchmark profiles or ``kernel:<name>`` kernels) supply each
    phase's instructions, and how the phases are scheduled over the run:

    * ``static`` -- each segment runs once, in order, splitting the
      instruction budget by ``weights`` (one long regime per segment);
    * ``oscillating`` -- the segments alternate every ``period``
      instructions until the budget is exhausted (regime *changes* at a
      fixed cadence -- where online DVFS controllers must react);
    * ``hotset`` -- a single base segment whose data working set is
      rescaled every ``period`` instructions through ``hot_scales`` (the
      hot set drifts while the instruction mix stays put).
    """

    name: str
    description: str
    kind: str
    #: base workload names: benchmark profiles or ``kernel:<name>`` kernels
    segments: Tuple[str, ...]
    #: instructions per phase (oscillating / hotset schedules)
    period: int = 500
    #: per-segment budget shares (static schedules; empty = uniform)
    weights: Tuple[float, ...] = ()
    #: working-set multipliers cycled per phase (hotset schedules)
    hot_scales: Tuple[float, ...] = (1.0, 4.0, 0.25)

    def __post_init__(self) -> None:
        if self.kind not in PHASE_KINDS:
            raise ValueError(f"mix {self.name!r}: unknown phase kind "
                             f"{self.kind!r}; known: {', '.join(PHASE_KINDS)}")
        if not self.segments:
            raise ValueError(f"mix {self.name!r}: needs at least one segment")
        if self.kind in (PHASE_OSCILLATING, PHASE_HOTSET) and self.period <= 0:
            raise ValueError(f"mix {self.name!r}: period must be positive")
        if self.weights and len(self.weights) != len(self.segments):
            raise ValueError(f"mix {self.name!r}: {len(self.weights)} weights "
                             f"for {len(self.segments)} segments")
        if any(w <= 0 for w in self.weights):
            raise ValueError(f"mix {self.name!r}: weights must be positive")
        if self.kind == PHASE_HOTSET and not self.hot_scales:
            raise ValueError(f"mix {self.name!r}: hotset mixes need "
                             "hot_scales")


#: The named workload-profile table of characterized multi-phase mixes.  Each
#: entry is registered as the first-class workload name ``phased:<mix>`` (see
#: :mod:`repro.workloads.registry`) and therefore flows through scenarios,
#: sweeps, the results store and ``repro serve`` like any stationary workload.
WORKLOAD_MIXES: Dict[str, PhasedMix] = {m.name: m for m in [
    PhasedMix(
        name="intfp-osc", kind=PHASE_OSCILLATING,
        segments=("gcc", "swim"), period=400,
        description="integer/FP regime oscillation: gcc (no FP) alternating "
                    "with swim (streaming FP) every 400 instructions"),
    PhasedMix(
        name="calm-storm", kind=PHASE_OSCILLATING,
        segments=("adpcm", "fpppp"), period=600,
        description="control-flow regime oscillation: branchy adpcm "
                    "alternating with nearly branch-free FP fpppp"),
    PhasedMix(
        name="membound-osc", kind=PHASE_OSCILLATING,
        segments=("li", "tomcatv"), period=500,
        description="memory-pressure oscillation: small-footprint li "
                    "alternating with cache-thrashing tomcatv"),
    PhasedMix(
        name="int-fp-mem", kind=PHASE_STATIC,
        segments=("gcc", "swim", "mpeg2"), weights=(1.0, 1.0, 1.0),
        description="three long regimes back to back: integer compile, "
                    "streaming FP, then media/memory"),
    PhasedMix(
        name="hotset-perl", kind=PHASE_HOTSET,
        segments=("perl",), period=500, hot_scales=(1.0, 4.0, 0.25),
        description="dynamic hot set: perl's working set rescaled every "
                    "500 instructions (1x -> 4x -> 0.25x)"),
    PhasedMix(
        name="kernel-warmup", kind=PHASE_STATIC,
        segments=("kernel:dot_product", "gcc"), weights=(1.0, 3.0),
        description="assembled dot-product kernel prologue followed by a "
                    "long gcc-profile regime"),
]}


def get_mix(name: str) -> PhasedMix:
    """Look up a phased workload mix by name."""
    try:
        return WORKLOAD_MIXES[name]
    except KeyError as exc:
        raise KeyError(f"unknown phased mix {name!r}; known: "
                       f"{', '.join(sorted(WORKLOAD_MIXES))}") from exc


def available_mixes() -> Tuple[str, ...]:
    """Registered phased-mix names, sorted."""
    return tuple(sorted(WORKLOAD_MIXES))
