"""The ``repro serve`` HTTP results service.

A :class:`ResultsService` wraps one results store and one
:class:`~repro.exec.ExecutionConfig` behind a small JSON API:

* ``GET /health`` -- service metadata (store root, code fingerprint,
  backend, queue depth);
* ``GET /scenario?name=...&field=value...`` (or ``?scenario=<json>``) --
  one scenario result.  A stored result returns *200* with a body that is
  byte-identical to ``repro run --json`` / ``ScenarioResult.to_json()``
  (provenance rides in ``X-Repro-Status`` / ``X-Repro-Key`` headers, never
  in the body); a miss returns *202 Accepted* and queues the scenario for
  the background sweep thread, so a later repeat of the query is a hit.
* ``GET /compare?...`` -- the design-space grid of
  :func:`~repro.core.experiments.design_space_scenarios`, rendered as
  records + table once every cell is stored (*202* with the miss count
  until then).

Misses are *batched*: the drain thread collects everything queued during
one poll interval and runs it as a single
:func:`~repro.results.resume_sweep` over the service's job backend, so a
burst of cold queries warms the store with one warm-started sweep instead
of one process pool per request.  Failures are classified like the rest of
the fabric: infrastructure errors (``OSError``, a broken pool) are retried
with backoff so a transient hiccup never becomes a lasting *500*, while a
scenario whose computation fails deterministically is remembered as a
failure and reported with *500* (once) instead of being retried forever.

The service degrades instead of collapsing: the miss queue is bounded
(``max_pending``), and a cold query arriving at a full queue gets *429 Too
Many Requests* with a ``Retry-After`` header instead of growing the queue
without limit; ``/compare`` scans its grid under a per-request deadline
(``request_deadline``) and returns *202* early rather than stalling the
connection; ``/health`` reports queue depth, quarantine count and drain
liveness so a load balancer can tell a saturated replica from a dead one.
"""

from __future__ import annotations

import json
import threading
import time
from dataclasses import replace
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Dict, List, Optional, Tuple, Union
from urllib.parse import parse_qs, urlsplit

from ..core.experiments import design_space_scenarios
from ..core.scenario import DEFAULT_INSTRUCTIONS, Scenario, get_scenario
from ..exec import ExecutionConfig
from ..results import resume_sweep, run_cached
from ..results.store import ResultsStore, resolve_store

__all__ = ["ResultsService"]

#: Scenario fields the /scenario endpoint accepts as query parameters.
SCENARIO_FIELDS = frozenset(Scenario.__dataclass_fields__)


def _parse_query_value(text: str) -> Any:
    """Parse one query value: JSON first, bare string as fallback."""
    try:
        return json.loads(text)
    except ValueError:
        return text


def _scenario_from_query(params: Dict[str, List[str]]) -> Scenario:
    """Build the queried scenario from /scenario query parameters.

    ``scenario=<full canonical JSON>`` wins (that is what ``repro query``
    sends -- guaranteed key-identical to the client's local scenario);
    otherwise ``name=<registered scenario>`` plus per-field overrides.
    Raises ValueError/KeyError for malformed input (mapped to 400/404).
    """
    if "scenario" in params:
        payload = json.loads(params["scenario"][0])
        if not isinstance(payload, dict):
            raise ValueError("scenario= must be a JSON object")
        return Scenario.from_dict(payload)
    if "name" not in params:
        raise ValueError("missing query parameter: name= (a registered "
                         "scenario) or scenario= (full scenario JSON)")
    scenario = get_scenario(params["name"][0])
    overrides = {}
    for field, values in params.items():
        if field == "name":
            continue
        if field not in SCENARIO_FIELDS:
            raise ValueError(f"unknown scenario field: {field!r}")
        overrides[field] = _parse_query_value(values[0])
    return replace(scenario, **overrides) if overrides else scenario


def _comma_list(params: Dict[str, List[str]], field: str,
                default: Optional[List[Optional[str]]] = None
                ) -> Optional[List[Optional[str]]]:
    """A comma-separated /compare parameter ('none' entries become None)."""
    if field not in params:
        return default
    return [None if item == "none" else item
            for item in params[field][0].split(",") if item]


class _Handler(BaseHTTPRequestHandler):
    """Request handler bound to one :class:`ResultsService` (class attr)."""

    service: "ResultsService"
    # the service answers tiny JSON bodies; keep-alive just ties up threads
    protocol_version = "HTTP/1.0"

    def log_message(self, format: str, *args: Any) -> None:
        """Route access logging through the service (quiet by default)."""
        self.service.log(f"{self.address_string()} - {format % args}")

    def do_GET(self) -> None:  # noqa: N802 - http.server contract
        """Dispatch GET /health, /scenario and /compare."""
        split = urlsplit(self.path)
        params = parse_qs(split.query)
        try:
            if split.path in ("/health", "/"):
                self._reply_json(200, self.service.health())
            elif split.path == "/scenario":
                self._reply_scenario(params)
            elif split.path == "/compare":
                self._reply_compare(params)
            else:
                self._reply_json(404, {"error":
                                       f"unknown endpoint: {split.path}"})
        except KeyError as exc:
            self._reply_json(404, {"error": str(exc.args[0])})
        except (ValueError, TypeError) as exc:
            self._reply_json(400, {"error": str(exc)})

    def _reply_scenario(self, params: Dict[str, List[str]]) -> None:
        scenario = _scenario_from_query(params)
        status, key, body = self.service.lookup(scenario)
        if status == "hit":
            self._reply_raw(200, body, status, key)
        elif status == "failed":
            self._reply_json(500, {"status": "failed", "key": key,
                                   "error": body}, status, key)
        elif status == "saturated":
            self._reply_json(429, {"status": "saturated", "key": key,
                                   "retry_after":
                                   self.service.retry_after_seconds()},
                            status, key,
                            retry_after=self.service.retry_after_seconds())
        else:
            self._reply_json(202, {"status": "pending", "key": key},
                            status, key)

    def _reply_compare(self, params: Dict[str, List[str]]) -> None:
        payload = self.service.compare(
            topologies=_comma_list(params, "topologies"),
            workloads=_comma_list(params, "workloads", ["perl"]),
            policies=_comma_list(params, "policies", [None]),
            controllers=_comma_list(params, "controllers", [None]),
            num_instructions=int(params.get(
                "instructions", [str(DEFAULT_INSTRUCTIONS)])[0]),
            seed=int(params.get("seed", ["1"])[0]))
        if payload["status"] == "complete":
            code, retry_after = 200, 0
        elif payload.get("saturated"):
            code, retry_after = 429, self.service.retry_after_seconds()
        else:
            code, retry_after = 202, 0
        self._reply_json(code, payload, payload["status"],
                         retry_after=retry_after)

    def _reply_raw(self, code: int, body: str, status: str = "",
                   key: str = "", retry_after: int = 0) -> None:
        payload = body.encode("utf-8")
        self.send_response(code)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(payload)))
        if status:
            self.send_header("X-Repro-Status", status)
        if key:
            self.send_header("X-Repro-Key", key)
        if retry_after:
            self.send_header("Retry-After", str(retry_after))
        self.end_headers()
        self.wfile.write(payload)

    def _reply_json(self, code: int, payload: Dict[str, Any],
                    status: str = "", key: str = "",
                    retry_after: int = 0) -> None:
        self._reply_raw(code, json.dumps(payload, indent=1, sort_keys=True),
                        status, key, retry_after)


class ResultsService:
    """HTTP facade over one results store + one execution config.

    ``store`` accepts everything :func:`~repro.results.store.resolve_store`
    does (default: the default store); ``execution`` is an
    :class:`~repro.exec.ExecutionConfig` or a job-backend name whose
    ``store`` field is rebound to the service's store.  ``port=0`` binds an
    ephemeral port (see :attr:`url` after :meth:`start`).  ``max_pending``
    bounds the miss queue (cold queries beyond it get 429 +
    ``Retry-After``); ``request_deadline`` bounds how long one ``/compare``
    request may scan its grid before answering 202 with what it knows.
    """

    def __init__(self,
                 store: Union[bool, str, ResultsStore, None] = True,
                 execution: Union[ExecutionConfig, str, None] = None,
                 host: str = "127.0.0.1",
                 port: int = 8000,
                 poll_interval: float = 0.25,
                 max_pending: int = 128,
                 request_deadline: float = 10.0,
                 verbose: bool = False) -> None:
        resolved = resolve_store(store)
        self.store = resolved if resolved is not None else ResultsStore()
        if isinstance(execution, str):
            execution = ExecutionConfig(backend=execution)
        elif execution is None:
            execution = ExecutionConfig()
        self.execution = replace(execution, store=self.store)
        self.host = host
        self.port = port
        self.poll_interval = poll_interval
        self.max_pending = max_pending
        self.request_deadline = request_deadline
        self.verbose = verbose
        self._pending: Dict[str, Scenario] = {}
        self._failures: Dict[str, str] = {}
        self._lock = threading.Lock()
        self._wake = threading.Event()
        self._stop = threading.Event()
        self._server: Optional[ThreadingHTTPServer] = None
        self._threads: List[threading.Thread] = []

    # ------------------------------------------------------------- lifecycle
    def start(self) -> "ResultsService":
        """Bind the listening socket and start the server + drain threads."""
        handler = type("BoundHandler", (_Handler,), {"service": self})
        self._server = ThreadingHTTPServer((self.host, self.port), handler)
        self.port = self._server.server_address[1]
        self._stop.clear()
        self._threads = [
            threading.Thread(target=self._server.serve_forever,
                             name="repro-serve-http", daemon=True),
            threading.Thread(target=self._drain_loop,
                             name="repro-serve-drain", daemon=True),
        ]
        for thread in self._threads:
            thread.start()
        return self

    def stop(self) -> None:
        """Shut the server down and join the worker threads."""
        self._stop.set()
        self._wake.set()
        if self._server is not None:
            self._server.shutdown()
            self._server.server_close()
            self._server = None
        for thread in self._threads:
            thread.join(timeout=5)
        self._threads = []

    def run_forever(self) -> None:
        """Block until interrupted (the ``repro serve`` foreground shape)."""
        if self._server is None:
            self.start()
        try:
            while not self._stop.wait(0.5):
                pass
        except KeyboardInterrupt:
            pass
        finally:
            self.stop()

    @property
    def url(self) -> str:
        """Base URL of the running service."""
        return f"http://{self.host}:{self.port}"

    def log(self, message: str) -> None:
        """Access/progress logging hook (stdout when ``verbose``)."""
        if self.verbose:
            print(f"[repro serve] {message}", flush=True)

    # -------------------------------------------------------------- requests
    def retry_after_seconds(self) -> int:
        """The ``Retry-After`` value sent with 429 replies (whole seconds).

        One poll interval (rounded up) is when the drain thread will next
        shrink the queue, so it is the earliest retry that can succeed.
        """
        return max(1, int(self.poll_interval) +
                   (0 if self.poll_interval == int(self.poll_interval)
                    else 1))

    def health(self) -> Dict[str, Any]:
        """The /health payload (queue depth, quarantine, drain liveness)."""
        with self._lock:
            pending = len(self._pending)
            failed = len(self._failures)
        drain_alive = any(thread.name == "repro-serve-drain"
                          and thread.is_alive() for thread in self._threads)
        return {
            "status": "ok" if drain_alive or not self._threads
            else "degraded",
            "store": str(self.store.root),
            "fingerprint": self.store.fingerprint,
            "backend": self.execution.backend,
            "pending": pending,
            "max_pending": self.max_pending,
            "failed": failed,
            "quarantined": len(self.store.quarantined()),
            "drain_alive": drain_alive,
        }

    def lookup(self, scenario: Scenario) -> Tuple[str, str, str]:
        """Probe one scenario: ``(status, key, body)``.

        ``status`` is ``"hit"`` (body = the stored result's canonical JSON),
        ``"failed"`` (body = the recorded error), ``"saturated"`` (the miss
        queue is full -- mapped to 429 + ``Retry-After``; nothing was
        queued) or ``"pending"`` (the scenario was queued for the drain
        thread; body empty).
        """
        key = self.store.key_for(scenario)
        hit = self.store.get_with_seconds(scenario)
        if hit is not None:
            return "hit", key, hit[0].to_json()
        with self._lock:
            if key in self._failures:
                return "failed", key, self._failures.pop(key)
            if (key not in self._pending
                    and len(self._pending) >= self.max_pending):
                return "saturated", key, ""
            self._pending.setdefault(key, scenario)
        self._wake.set()
        return "pending", key, ""

    def compare(self, **grid_fields: Any) -> Dict[str, Any]:
        """Probe the design-space grid; records+table once fully stored.

        The scan runs under the service's per-request deadline: when it
        expires mid-grid, the un-probed remainder counts as missing and the
        request answers early (202) instead of stalling the connection.
        """
        from ..analysis.report import design_space_records, design_space_table
        grid = design_space_scenarios(**grid_fields)
        deadline = time.monotonic() + self.request_deadline
        outcomes = []
        missing = 0
        saturated = 0
        deadline_hit = False
        for index, scenario in enumerate(grid):
            if time.monotonic() > deadline:
                missing += len(grid) - index
                deadline_hit = True
                break
            hit = self.store.get_with_seconds(scenario)
            if hit is None:
                missing += 1
                status, _, _ = self.lookup(scenario)  # enqueue the miss
                if status == "saturated":
                    saturated += 1
            else:
                outcomes.append(hit[0])
        if missing:
            payload: Dict[str, Any] = {"status": "pending",
                                       "missing": missing,
                                       "total": len(grid)}
            if saturated:
                payload["saturated"] = saturated
            if deadline_hit:
                payload["deadline_exceeded"] = True
            return payload
        return {
            "status": "complete",
            "total": len(grid),
            "records": design_space_records(outcomes),
            "table": design_space_table(outcomes),
        }

    # ----------------------------------------------------------- drain thread
    def _drain_loop(self) -> None:
        """Background loop: batch queued misses into one sweep per interval."""
        while not self._stop.is_set():
            self._wake.wait(timeout=self.poll_interval)
            self._wake.clear()
            if self._stop.is_set():
                return
            # everything queued while we slept becomes one batched sweep
            with self._lock:
                batch = dict(self._pending)
            if not batch:
                continue
            self.drain_once(batch)

    def drain_once(self, batch: Optional[Dict[str, Scenario]] = None) -> int:
        """Compute one batch of queued misses; returns the batch size.

        Exposed for tests and synchronous draining.  The happy path is a
        single batched :func:`resume_sweep` on the configured backend; if
        the sweep raises, each scenario is retried individually -- with
        backoff for infrastructure errors, so a transient ``OSError`` never
        becomes a lasting 500 -- and only a deterministic failure (or one
        that outlives the retry budget) is recorded for the 500 reply.
        """
        if batch is None:
            with self._lock:
                batch = dict(self._pending)
        if not batch:
            return 0
        scenarios = list(batch.values())
        self.log(f"computing {len(scenarios)} queued scenario(s) on the "
                 f"{self.execution.backend!r} backend")
        try:
            resume_sweep(scenarios, execution=self.execution)
        except Exception:
            for key, scenario in batch.items():
                error = self._compute_with_retries(key, scenario)
                if error is not None:
                    with self._lock:
                        self._failures[key] = error
        with self._lock:
            for key in batch:
                self._pending.pop(key, None)
        return len(batch)

    def _compute_with_retries(self, key: str,
                              scenario: Scenario) -> Optional[str]:
        """Compute one scenario; the recorded error string, or None on success.

        Infrastructure failures are retried with the execution config's
        backoff/budget (the same classification the workers use);
        deterministic simulation exceptions are recorded immediately.
        """
        from ..exec.backends import is_infrastructure_error, retry_delay
        attempts = 0
        while True:
            attempts += 1
            try:
                run_cached(scenario, store=self.store)
                return None
            except Exception as exc:
                if (is_infrastructure_error(exc)
                        and attempts <= self.execution.max_retries):
                    time.sleep(retry_delay(self.execution.retry_backoff,
                                           attempts, key))
                    continue
                return f"{type(exc).__name__}: {exc}"
