"""Figure 12: ijpeg with fetch -10 %, FP -20 %, and a memory-clock sweep.

Paper result: for ijpeg (very few memory accesses in its hot loops but a
non-trivial working set) slowing the memory clock trades performance for
energy poorly: energy savings of 4-13 % cost 15-25 % of performance, and the
voltage-scaled *synchronous* machine at the same performance ("ideal") is more
energy-efficient.  The crossover argument -- which domains are worth slowing
depends on the application -- is the point being reproduced.
"""

from repro.analysis import dvfs_table
from repro.core.dvfs import IJPEG_SWEEP
from repro.core.experiments import selective_slowdown

from conftest import TIMED_INSTRUCTIONS

import pytest

#: figure-reproduction benchmarks are tier-2: heavy, skipped by tier-1
pytestmark = pytest.mark.slow


def test_fig12_ijpeg_memory_sweep(benchmark, figure12_results):
    benchmark.pedantic(
        selective_slowdown, args=("ijpeg", IJPEG_SWEEP[0]),
        kwargs={"num_instructions": TIMED_INSTRUCTIONS},
        rounds=1, iterations=1)

    print("\n=== Figure 12: ijpeg, memory clock slowdown sweep "
          "(gals-00 / 10 / 20 / 50) ===")
    print(dvfs_table(figure12_results))

    performances = [r.relative_performance for r in figure12_results]
    energies = [r.relative_energy for r in figure12_results]

    # Slowing the memory clock further never helps performance (allow a small
    # tolerance for run-to-run phase noise between adjacent sweep points).
    for earlier, later in zip(performances, performances[1:]):
        assert later <= earlier + 0.02
    assert performances[-1] < performances[0]
    # Energy goes down (or at worst stays flat) as more of the chip slows and
    # its voltage scales.
    assert energies[-1] <= energies[0] + 0.02
    # All configurations lose performance relative to the synchronous base.
    assert all(p < 1.0 for p in performances)
    # The ideal (voltage-scaled synchronous) reference is more energy
    # efficient than the GALS configuration at the same performance for the
    # aggressive memory slowdowns -- the paper's "not a good tradeoff" claim.
    aggressive = figure12_results[-1]
    assert aggressive.ideal_energy <= aggressive.relative_energy + 0.02
    print(f"\ngals-50: perf {aggressive.relative_performance:.3f}, "
          f"energy {aggressive.relative_energy:.3f}, "
          f"ideal {aggressive.ideal_energy:.3f}")
