"""Reorder buffer.

Instructions are inserted at rename/dispatch in program order, marked complete
by the execution units, and retired in order by the commit stage (Table 2,
stage 8).  The ROB is also where mis-speculation recovery squashes younger
instructions.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Deque, Iterable, List, Optional

from .instruction import DynamicInstruction


class ReorderBufferFullError(RuntimeError):
    """Raised when allocating into a full ROB (callers should check first)."""


class ReorderBuffer:
    """In-order retirement window."""

    def __init__(self, capacity: int = 64) -> None:
        if capacity <= 0:
            raise ValueError("ROB capacity must be positive")
        self.capacity = capacity
        self._entries: Deque[DynamicInstruction] = deque()
        # statistics
        self.allocations = 0
        self.retirements = 0
        self.squashes = 0
        self.occupancy_accum = 0
        self.occupancy_samples = 0

    # ----------------------------------------------------------------- state
    @property
    def occupancy(self) -> int:
        """Number of in-flight instructions."""
        return len(self._entries)

    @property
    def is_full(self) -> bool:
        """True when no entry is free."""
        return len(self._entries) >= self.capacity

    @property
    def is_empty(self) -> bool:
        """True when nothing is in flight."""
        return not self._entries

    @property
    def mean_occupancy(self) -> float:
        """Average occupancy over the sampled cycles."""
        if self.occupancy_samples == 0:
            return 0.0
        return self.occupancy_accum / self.occupancy_samples

    def sample_occupancy(self) -> None:
        """Record the current occupancy (one sample per commit-domain cycle)."""
        self.occupancy_samples += 1
        self.occupancy_accum += len(self._entries)

    def __iter__(self):
        return iter(self._entries)

    # ------------------------------------------------------------ operations
    def allocate(self, instr: DynamicInstruction) -> int:
        """Append ``instr``; returns its ROB index (monotonic allocation id)."""
        if self.is_full:
            raise ReorderBufferFullError("reorder buffer is full")
        self._entries.append(instr)
        instr.rob_index = self.allocations
        self.allocations += 1
        return instr.rob_index

    def head(self) -> Optional[DynamicInstruction]:
        """Oldest un-retired instruction, or None."""
        return self._entries[0] if self._entries else None

    def retire_head(self) -> DynamicInstruction:
        """Remove and return the head (caller has checked it can commit)."""
        if not self._entries:
            raise LookupError("retire from an empty ROB")
        self.retirements += 1
        return self._entries.popleft()

    def squash_younger_than(self, branch_seq: int) -> List[DynamicInstruction]:
        """Remove every instruction younger than ``branch_seq``.

        Returns the squashed instructions (newest last) so the caller can free
        their physical registers and update statistics.
        """
        kept: Deque[DynamicInstruction] = deque()
        squashed: List[DynamicInstruction] = []
        for instr in self._entries:
            if instr.seq > branch_seq:
                instr.squashed = True
                squashed.append(instr)
            else:
                kept.append(instr)
        self._entries = kept
        self.squashes += len(squashed)
        return squashed

    def in_flight(self) -> Iterable[DynamicInstruction]:
        """All instructions currently in the window (oldest first)."""
        return tuple(self._entries)
